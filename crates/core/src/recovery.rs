//! Fault-tolerant execution: chunk-granular retry with simulated-time
//! backoff, plus the bookkeeping the degradation ladder in [`crate::run`]
//! builds on.
//!
//! The pipelined drivers enqueue chunks as H2D → kernel → D2H triplets on
//! round-robin streams. When the device surfaces an injected failure (see
//! [`gpsim::FaultPlan`]), the recovery layer maps the failing sequence
//! number back to its chunk, waits out an exponential backoff *in
//! simulated time*, and re-enqueues only that chunk's triplet — reusing
//! the same ring slots — while every other in-flight chunk keeps
//! streaming to completion. Failures the policy classifies as fatal (or
//! retry budgets running dry) surface as structured [`RtError`] variants
//! so callers can degrade to a simpler execution model instead of dying.

use std::collections::{BTreeMap, VecDeque};

use gpsim::{EngineKind, FaultStage, Gpu, HostSpanKind, SimError, SimTime};

use crate::error::{RtError, RtResult};
use crate::exec::Region;
use crate::report::ExecModel;
use crate::spec::MapDir;

/// When (and how hard) the runtime retries failed chunk work.
///
/// The default policy is **disabled** (`max_attempts == 0`): the drivers
/// then skip all recovery bookkeeping and behave exactly like the
/// pre-recovery runtime. Enable with [`RetryPolicy::retries`]:
///
/// ```
/// use pipeline_rt::RetryPolicy;
/// use gpsim::SimTime;
/// let p = RetryPolicy::retries(3).with_backoff(SimTime::from_us(50), 2.0);
/// assert!(p.enabled());
/// assert_eq!(p.backoff_for(2), SimTime::from_us(100));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retry budget per chunk; `0` disables recovery entirely.
    pub max_attempts: u32,
    /// Backoff before the first retry (simulated host time).
    pub backoff_base: SimTime,
    /// Multiplier applied per subsequent attempt (exponential backoff).
    pub backoff_factor: f64,
    /// Which stages are retryable, indexed by [`FaultStage::index`].
    /// Defaults to all four; a stage marked non-retryable turns its
    /// failures into [`RtError::Device`] immediately.
    pub stages: [bool; 4],
}

impl RetryPolicy {
    /// The disabled policy: no recovery bookkeeping at all.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 0,
            backoff_base: SimTime::from_us(50),
            backoff_factor: 2.0,
            stages: [true; 4],
        }
    }

    /// A policy that retries each failed chunk up to `max_attempts`
    /// times, with the default 50 µs × 2ⁿ backoff.
    pub fn retries(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::disabled()
        }
    }

    /// Set the backoff schedule: `base · factor^(attempt−1)` (consuming
    /// builder).
    #[must_use]
    pub fn with_backoff(mut self, base: SimTime, factor: f64) -> RetryPolicy {
        self.backoff_base = base;
        self.backoff_factor = factor.max(1.0);
        self
    }

    /// Mark one stage retryable or fatal (consuming builder).
    #[must_use]
    pub fn with_stage(mut self, stage: FaultStage, retryable: bool) -> RetryPolicy {
        self.stages[stage.index()] = retryable;
        self
    }

    /// True when recovery is active.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// Classify one failure: only *injected* faults on a stage the policy
    /// covers are transient. Genuine simulator errors (OOM, races,
    /// deadlocks) are never retryable — repeating the work cannot fix
    /// them.
    pub fn retryable(&self, stage: FaultStage, error: &SimError) -> bool {
        self.enabled()
            && self.stages[stage.index()]
            && matches!(error, SimError::Injected { .. })
    }

    /// Backoff before the `attempt`-th retry (1-based).
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        let exp = attempt.saturating_sub(1);
        SimTime::from_secs_f64(
            self.backoff_base.as_secs_f64() * self.backoff_factor.powi(exp as i32),
        )
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

/// One rung taken on the degradation ladder: a model was abandoned for a
/// simpler one over (part of) the iteration space.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Model that gave up.
    pub from: ExecModel,
    /// Model that took over.
    pub to: ExecModel,
    /// Iteration range the fallback re-executed.
    pub iterations: (i64, i64),
    /// Human-readable cause (`"retries exhausted on chunk 3 (h2d)"`).
    pub reason: String,
}

/// What recovery cost a run: retries per stage, commands re-enqueued,
/// simulated time spent backing off, and any degradations taken.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Failures retried, indexed by [`FaultStage::index`].
    pub retries: [u64; 4],
    /// Engine commands re-enqueued by retries (already subtracted from
    /// [`RunReport::commands`](crate::RunReport::commands), so a faulty
    /// run reports the same command count as a fault-free one).
    pub reissued_commands: u64,
    /// Simulated host time spent in retry backoff.
    pub backoff_time: SimTime,
    /// Degradation-ladder rungs taken, in order.
    pub degradations: Vec<Degradation>,
}

impl RecoveryStats {
    /// Total retries across stages.
    pub fn total_retries(&self) -> u64 {
        self.retries.iter().sum()
    }

    /// True when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.total_retries() == 0 && self.degradations.is_empty()
    }

    /// Fold another stats block into this one (used when fallback runs
    /// are merged into the primary report).
    pub fn merge(&mut self, other: &RecoveryStats) {
        for (a, b) in self.retries.iter_mut().zip(&other.retries) {
            *a += b;
        }
        self.reissued_commands += other.reissued_commands;
        self.backoff_time += other.backoff_time;
        self.degradations.extend(other.degradations.iter().cloned());
    }
}

/// Pre-run snapshot of every `ToFrom` host array.
///
/// A failed chunk still retires the rest of its stream's queue, so its
/// D2H can drain stale device data over the host windows of `ToFrom`
/// maps — which are also the *inputs* of any retry. The snapshot restores
/// the failed window to its pre-run contents before re-enqueueing (To
/// maps are never written; From windows are simply overwritten by the
/// retried D2H).
pub(crate) struct ToFromSnapshot {
    /// One entry per map; `Some` only for `ToFrom` maps in functional
    /// mode (timing mode has no backing data to corrupt).
    maps: Vec<Option<Vec<f32>>>,
}

impl ToFromSnapshot {
    /// An empty snapshot (recovery disabled).
    pub(crate) fn empty(region: &Region) -> ToFromSnapshot {
        ToFromSnapshot {
            maps: vec![None; region.spec.maps.len()],
        }
    }

    /// Capture the `ToFrom` host arrays of a region.
    pub(crate) fn take(gpu: &Gpu, region: &Region) -> RtResult<ToFromSnapshot> {
        if gpu.mode() != gpsim::ExecMode::Functional {
            return Ok(ToFromSnapshot::empty(region));
        }
        let mut maps = Vec::with_capacity(region.spec.maps.len());
        for (m, &h) in region.spec.maps.iter().zip(&region.arrays) {
            if m.dir == MapDir::ToFrom {
                let mut buf = vec![0.0f32; m.split.total_elems()];
                gpu.host_read(h, 0, &mut buf)?;
                maps.push(Some(buf));
            } else {
                maps.push(None);
            }
        }
        Ok(ToFromSnapshot { maps })
    }

    /// Restore the host windows that iterations `[k0, k1)` read, before
    /// their chunk is re-enqueued.
    pub(crate) fn restore_window(
        &self,
        gpu: &Gpu,
        region: &Region,
        k0: i64,
        k1: i64,
    ) -> RtResult<()> {
        for (i, m) in region.spec.maps.iter().enumerate() {
            let Some(data) = &self.maps[i] else { continue };
            let (a, b) = m.split.needed_slices(k0, k1);
            let a = a.max(0);
            let b = b.min(m.split.extent() as i64);
            if a >= b {
                continue;
            }
            let elems = m.split.slice_elems();
            let (off, len) = ((a as usize) * elems, ((b - a) as usize) * elems);
            gpu.host_write(region.arrays[i], off, &data[off..off + len])?;
        }
        Ok(())
    }

    /// Restore every snapshotted array in full (whole-run retry).
    pub(crate) fn restore_all(&self, gpu: &Gpu, region: &Region) -> RtResult<()> {
        for (i, data) in self.maps.iter().enumerate() {
            if let Some(data) = data {
                gpu.host_write(region.arrays[i], 0, data)?;
            }
        }
        Ok(())
    }
}

/// Everything a driver needs to run with recovery enabled.
pub(crate) struct RecoveryCtx<'p> {
    pub(crate) policy: &'p RetryPolicy,
    pub(crate) snapshot: &'p ToFromSnapshot,
}

/// How a recovery-aware driver finished.
pub(crate) enum DriverOutcome {
    /// The run completed (possibly after retries).
    Done(crate::report::RunReport),
    /// A chunk ran out of retry budget; the device is drained and the
    /// driver's resources are released. `unfinished` lists the iteration
    /// ranges whose results are not trustworthy, for the degradation
    /// ladder to re-execute.
    Exhausted {
        /// Accounting of the partial run (recovery stats folded in), so
        /// the ladder can merge it with the fallback's report.
        report: crate::report::RunReport,
        /// Chunk index that exhausted its budget.
        chunk: usize,
        /// Stage of its last failure.
        stage: FaultStage,
        /// Attempts consumed (== the policy's budget).
        attempts: u32,
        /// The last underlying error.
        source: SimError,
        /// Iteration ranges left unfinished, ascending and disjoint.
        unfinished: Vec<(i64, i64)>,
    },
}

/// Result of [`drain_with_recovery`], before the driver wraps it into a
/// [`DriverOutcome`].
pub(crate) enum DrainResult {
    /// All chunks finished.
    Clean {
        stats: RecoveryStats,
        /// `(host ns, pending retries)` samples for the
        /// `retries_in_flight` counter track (empty without retries).
        retry_samples: Vec<(u64, f64)>,
    },
    /// A chunk exceeded the retry budget.
    Exhausted {
        chunk: usize,
        stage: FaultStage,
        attempts: u32,
        source: SimError,
        /// All chunk indices still unfinished (including `chunk`).
        open: Vec<usize>,
        stats: RecoveryStats,
    },
}

fn stage_of(engine: EngineKind) -> FaultStage {
    match engine {
        EngineKind::H2D => FaultStage::H2d,
        EngineKind::D2H => FaultStage::D2h,
        EngineKind::Compute => FaultStage::Kernel,
    }
}

/// Drain the device with chunk-granular retry.
///
/// `chunk_seqs[c]` is the `[first, end)` enqueue-sequence range of chunk
/// `c`'s original commands; `dependents[c]` lists the chunks whose
/// kernels consumed input slices that chunk `c` copied (halo sharing), so
/// an H2D failure retries the consumers too — their kernels read stale
/// device data and retired without an error of their own. `reissue`
/// re-enqueues one chunk's full H2D → kernel → D2H triplet (the complete
/// input window, so a reissued chunk is self-sufficient regardless of
/// ring state) and returns how many engine commands it enqueued.
///
/// Retries are serialized: each reissue is followed by a full drain, so
/// at most one retried chunk is in flight at a time and ring-slot
/// hazards against completed work cannot arise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_with_recovery(
    gpu: &mut Gpu,
    model: ExecModel,
    region: &Region,
    ctx: &RecoveryCtx<'_>,
    chunks: &[(i64, i64)],
    chunk_seqs: &[(u64, u64)],
    dependents: &[Vec<usize>],
    mut reissue: impl FnMut(&mut Gpu, usize) -> RtResult<u64>,
) -> RtResult<DrainResult> {
    let mut stats = RecoveryStats::default();
    let mut retry_samples: Vec<(u64, f64)> = Vec::new();
    let mut attempts = vec![0u32; chunks.len()];
    // Chunk of each *reissued* seq range; searched before the original
    // ranges so a re-failed retry maps back to its chunk.
    let mut reissue_map: Vec<(u64, u64, usize)> = Vec::new();
    // Pending chunks: FIFO queue + charged flag ("charged" = scheduled by
    // its own failure and so debited an attempt; dependents ride along
    // free — they did not fail, their inputs did).
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut open: BTreeMap<usize, bool> = BTreeMap::new();
    // Last failure seen per chunk, for backoff attribution and the
    // exhaustion report.
    let mut last_failure: BTreeMap<usize, (FaultStage, usize, SimError)> = BTreeMap::new();

    let chunk_of = |reissues: &[(u64, u64, usize)], seq: u64| -> Option<usize> {
        reissues
            .iter()
            .rev()
            .find(|&&(s0, s1, _)| (s0..s1).contains(&seq))
            .map(|&(_, _, c)| c)
            .or_else(|| {
                chunk_seqs
                    .iter()
                    .position(|&(s0, s1)| (s0..s1).contains(&seq))
            })
    };

    loop {
        // --- Drain all in-flight work, classifying failures -------------
        loop {
            match gpu.synchronize() {
                Ok(()) => break,
                Err(e) => {
                    let failures = gpu.take_failures();
                    if failures.is_empty() {
                        // Not an engine-command failure (enqueue-time or
                        // bookkeeping error): nothing to retry.
                        return Err(e.into());
                    }
                    for f in failures {
                        let stage = stage_of(f.engine);
                        let Some(c) = chunk_of(&reissue_map, f.seq) else {
                            // Failed command outside any chunk (setup or
                            // teardown work) — not recoverable here.
                            return Err(f.error.into());
                        };
                        if !ctx.policy.retryable(stage, &f.error) {
                            return Err(RtError::Device {
                                model,
                                chunk: c,
                                stage,
                                source: f.error,
                            });
                        }
                        stats.retries[stage.index()] += 1;
                        last_failure.insert(c, (stage, f.stream, f.error));
                        match open.entry(c) {
                            std::collections::btree_map::Entry::Vacant(v) => {
                                v.insert(true);
                                queue.push_back(c);
                            }
                            std::collections::btree_map::Entry::Occupied(mut o) => {
                                *o.get_mut() = true;
                            }
                        }
                        if stage == FaultStage::H2d {
                            // The failed copy also fed these chunks'
                            // kernels stale slices; re-run them too.
                            for &d in &dependents[c] {
                                if let std::collections::btree_map::Entry::Vacant(v) =
                                    open.entry(d)
                                {
                                    v.insert(false);
                                    queue.push_back(d);
                                }
                            }
                        }
                    }
                    if gpu.timeline_enabled() {
                        retry_samples.push((gpu.now().as_ns(), open.len() as f64));
                    }
                }
            }
        }

        // --- Re-enqueue one pending chunk (serialized retries) ----------
        let Some(c) = queue.pop_front() else {
            if !retry_samples.is_empty() && gpu.timeline_enabled() {
                retry_samples.push((gpu.now().as_ns(), 0.0));
            }
            return Ok(DrainResult::Clean {
                stats,
                retry_samples,
            });
        };
        let charged = open.get(&c).copied().unwrap_or(true);
        if charged {
            attempts[c] += 1;
            if attempts[c] > ctx.policy.max_attempts {
                let (stage, _, source) = last_failure
                    .get(&c)
                    .cloned()
                    .unwrap_or((FaultStage::Kernel, 0, SimError::Injected {
                        stage: FaultStage::Kernel,
                        occurrence: 0,
                    }));
                return Ok(DrainResult::Exhausted {
                    chunk: c,
                    stage,
                    attempts: attempts[c] - 1,
                    source,
                    open: open.keys().copied().collect(),
                    stats,
                });
            }
            // Exponential backoff in simulated host time, visible in the
            // trace as a `wait-retry` span and a Retry stall on the
            // chunk's stream.
            let backoff = ctx.policy.backoff_for(attempts[c]);
            let stream = last_failure.get(&c).map_or(0, |&(_, s, _)| s);
            let t0 = gpu.now();
            gpu.host_busy(backoff);
            let t1 = gpu.now();
            gpu.record_retry_wait(stream, t0, t1);
            gpu.push_host_span(
                format!("wait-retry(chunk={c}, attempt={})", attempts[c]),
                HostSpanKind::Wait,
                t0,
                t1,
            );
            stats.backoff_time += t1 - t0;
        }
        let (k0, k1) = chunks[c];
        ctx.snapshot.restore_window(gpu, region, k0, k1)?;
        let s0 = gpu.next_seq();
        let n = reissue(gpu, c)?;
        reissue_map.push((s0, gpu.next_seq(), c));
        stats.reissued_commands += n;
        open.remove(&c);
        if gpu.timeline_enabled() {
            retry_samples.push((gpu.now().as_ns(), open.len() as f64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_classification() {
        let p = RetryPolicy::retries(2).with_stage(FaultStage::Kernel, false);
        let inj = SimError::Injected {
            stage: FaultStage::H2d,
            occurrence: 0,
        };
        assert!(p.retryable(FaultStage::H2d, &inj));
        assert!(!p.retryable(FaultStage::Kernel, &inj), "stage disabled");
        assert!(
            !p.retryable(FaultStage::H2d, &SimError::Deadlock("x".into())),
            "genuine errors are fatal"
        );
        assert!(!RetryPolicy::disabled().retryable(FaultStage::H2d, &inj));
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy::retries(5).with_backoff(SimTime::from_us(10), 2.0);
        assert_eq!(p.backoff_for(1), SimTime::from_us(10));
        assert_eq!(p.backoff_for(2), SimTime::from_us(20));
        assert_eq!(p.backoff_for(3), SimTime::from_us(40));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RecoveryStats::default();
        a.retries[0] = 2;
        a.reissued_commands = 6;
        let mut b = RecoveryStats::default();
        b.retries[0] = 1;
        b.retries[2] = 3;
        b.backoff_time = SimTime::from_us(5);
        b.degradations.push(Degradation {
            from: ExecModel::PipelinedBuffer,
            to: ExecModel::Pipelined,
            iterations: (0, 8),
            reason: "test".into(),
        });
        a.merge(&b);
        assert_eq!(a.retries, [3, 0, 3, 0]);
        assert_eq!(a.reissued_commands, 6);
        assert_eq!(a.backoff_time, SimTime::from_us(5));
        assert_eq!(a.total_retries(), 6);
        assert_eq!(a.degradations.len(), 1);
        assert!(!a.is_clean());
        assert!(RecoveryStats::default().is_clean());
    }
}

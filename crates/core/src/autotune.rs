//! Auto-tuning scheduler — the paper's §VII outlook ("integrate a
//! performance model in an autotuning scheduler").
//!
//! Two strategies:
//!
//! * [`TuneStrategy::Model`] (the default): every candidate
//!   `(chunk_size, num_streams)` is ranked by the analytic
//!   [`CostModel`](crate::CostModel) — a forward recurrence over the
//!   profile constants that costs microseconds per cell and issues
//!   **zero** simulated runs. [`TuneResult::des_trials`] is 0.
//! * [`TuneStrategy::Exhaustive`]: the original brute force — every
//!   candidate is executed against a timing-mode twin of the caller's
//!   context (phantom data, cost model only). Kept as the validation
//!   oracle for the analytic model; each sweep worker builds **one**
//!   twin and reuses it across its trials (the driver quiesces the
//!   device — frees rings, destroys streams — after every run).
//!
//! Neither strategy touches the caller's data.

use gpsim::{Gpu, HostBufId, HostPool, SimTime};

use crate::buffer::{buffer_impl, BufferOptions};
use crate::costmodel::ModelTuner;
use crate::error::{RtError, RtResult};
use crate::exec::{expect_done, KernelBuilder, Region};
use crate::report::RunReport;
use crate::spec::Schedule;

/// The candidate grid explored by [`autotune`].
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// Candidate chunk sizes.
    pub chunks: Vec<usize>,
    /// Candidate stream counts.
    pub streams: Vec<usize>,
}

impl TuneSpace {
    /// Defaults, identical to [`Default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the candidate chunk sizes (consuming builder).
    #[must_use]
    pub fn with_chunks(mut self, chunks: Vec<usize>) -> Self {
        self.chunks = chunks;
        self
    }

    /// Set the candidate stream counts (consuming builder).
    #[must_use]
    pub fn with_streams(mut self, streams: Vec<usize>) -> Self {
        self.streams = streams;
        self
    }
}

impl Default for TuneSpace {
    /// Powers of two up to 64 iterations per chunk × 1–5 streams — a
    /// superset of every configuration the paper explores in Figures 4,
    /// 7 and 8.
    fn default() -> Self {
        TuneSpace {
            chunks: vec![1, 2, 4, 8, 16, 32, 64],
            streams: vec![1, 2, 3, 4, 5],
        }
    }
}

/// How [`autotune_with`] ranks candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TuneStrategy {
    /// Analytic cost model: O(1) per cell, zero simulated runs.
    #[default]
    Model,
    /// Simulate every cell on a timing-mode twin (the validation
    /// oracle — orders of magnitude slower).
    Exhaustive,
}

/// One tuning trial.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// Chunk size tried.
    pub chunk: usize,
    /// Stream count tried.
    pub streams: usize,
    /// Region time for this cell — simulated (exhaustive) or predicted
    /// (model); `None` if the configuration was infeasible (memory
    /// limit below the minimum footprint).
    pub time: Option<SimTime>,
}

/// Result of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning schedule.
    pub best: Schedule,
    /// Its region time (simulated or predicted, per the strategy).
    pub best_time: SimTime,
    /// Every trial, in sweep order.
    pub trials: Vec<Trial>,
    /// Cells skipped as infeasible under `pipeline_mem_limit`.
    pub infeasible_skipped: usize,
    /// Full simulated runs the sweep issued — 0 under
    /// [`TuneStrategy::Model`].
    pub des_trials: usize,
}

/// Tune with the default strategy ([`TuneStrategy::Model`]) and return
/// the fastest schedule for this region (Pipelined-buffer model).
pub fn autotune(
    gpu: &Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
) -> RtResult<TuneResult> {
    autotune_with(gpu, region, builder, space, TuneStrategy::default())
}

/// Tune with an explicit [`TuneStrategy`].
pub fn autotune_with(
    gpu: &Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
    strategy: TuneStrategy,
) -> RtResult<TuneResult> {
    match strategy {
        TuneStrategy::Model => ModelTuner::new(gpu, region, builder)?.pick(space),
        TuneStrategy::Exhaustive => autotune_exhaustive(gpu, region, builder, space),
    }
}

/// Per-worker probe state for the exhaustive sweep: one timing-mode twin
/// plus its host-array twins, built once and reused across trials.
struct ProbeState {
    twin: Gpu,
    arrays: Vec<HostBufId>,
}

fn autotune_exhaustive(
    gpu: &Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
) -> RtResult<TuneResult> {
    if space.chunks.is_empty() || space.streams.is_empty() {
        return Err(RtError::Spec("empty tuning space".into()));
    }
    region.validate_binding(gpu)?;

    // Snapshot everything a worker needs to rebuild the timing-mode twin
    // (the caller's context itself is !Send): device profile plus the
    // shape and pinnedness of every bound host array — pinnedness
    // affects transfer cost, and allocation order preserves buffer ids.
    let profile = gpu.profile().clone();
    let mut array_shapes = Vec::with_capacity(region.arrays.len());
    for &h in &region.arrays {
        array_shapes.push((gpu.host_len(h)?, gpu.host_pinned(h)?));
    }

    let candidates: Vec<(usize, usize)> = space
        .chunks
        .iter()
        .flat_map(|&c| space.streams.iter().map(move |&s| (c, s)))
        .collect();

    // One twin per *worker*, not per trial: the buffered driver leaves
    // the device quiesced (ring buffers freed, streams destroyed) after
    // every run, so consecutive trials on one twin are isolated; only
    // the device clock carries over, and trials measure from their own
    // `t0`. Infeasible cells error before touching the device at all.
    let init = || -> Result<ProbeState, String> {
        let build = || -> RtResult<ProbeState> {
            let pool = HostPool::new(gpsim::ExecMode::Timing);
            let mut twin = Gpu::with_host_pool(profile.clone(), pool)?;
            // Probe twins only need the scalar report (total time); skip
            // timeline construction so probing stays cheap.
            twin.set_timeline_enabled(false);
            let mut arrays = Vec::with_capacity(array_shapes.len());
            for &(len, pinned) in &array_shapes {
                arrays.push(twin.alloc_host(len, pinned)?);
            }
            Ok(ProbeState { twin, arrays })
        };
        build().map_err(|e| e.to_string())
    };
    let results = crate::sweep::sweep_map_with(candidates.len(), init, |state, i| {
        let st = match state {
            Ok(st) => st,
            Err(e) => return Err(RtError::Spec(e.clone())),
        };
        let (chunk, streams) = candidates[i];
        let mut candidate =
            Region::new(region.spec.clone(), region.lo, region.hi, st.arrays.clone());
        candidate.spec.schedule = Schedule::static_(chunk, streams);
        buffer_impl(
            &mut st.twin,
            &candidate,
            builder,
            &BufferOptions::default(),
            None,
        )
        .map(expect_done)
        .map(|rep| rep.total)
    });

    // Fold in grid order: the winner on ties is the earliest candidate,
    // exactly as the serial loop chose it.
    let mut trials = Vec::new();
    let mut best: Option<(Schedule, SimTime)> = None;
    let mut infeasible = 0usize;
    for (&(chunk, streams), result) in candidates.iter().zip(results) {
        let time = match result {
            Ok(t) => {
                if best.is_none() || t < best.as_ref().unwrap().1 {
                    best = Some((Schedule::static_(chunk, streams), t));
                }
                Some(t)
            }
            // Infeasible configurations (memory limit) are skipped.
            Err(RtError::MemLimitInfeasible { .. }) => {
                infeasible += 1;
                None
            }
            Err(e) => return Err(e),
        };
        trials.push(Trial {
            chunk,
            streams,
            time,
        });
    }
    let des_trials = trials.len();
    let (best, best_time) =
        best.ok_or_else(|| RtError::Spec("no feasible schedule in tuning space".into()))?;
    Ok(TuneResult {
        best,
        best_time,
        trials,
        infeasible_skipped: infeasible,
        des_trials,
    })
}

/// Tune (model strategy — zero simulated sweep runs), then run the
/// region with the winning schedule on the caller's context. Returns
/// the tuning result alongside the real run's report.
pub fn run_autotuned(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
) -> RtResult<(TuneResult, RunReport)> {
    let tuned = autotune(gpu, region, builder, space)?;
    let mut best_region = region.clone();
    best_region.spec.schedule = tuned.best;
    let report = buffer_impl(gpu, &best_region, builder, &BufferOptions::default(), None)
        .map(expect_done)?;
    Ok((tuned, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Affine, MapDir, MapSpec, RegionSpec, SplitSpec};
    use gpsim::{DeviceProfile, ExecMode, KernelCost, KernelLaunch};

    const NZ: usize = 64;
    const SLICE: usize = 1 << 18; // 1 MB slices

    fn setup(profile: DeviceProfile) -> (Gpu, Region) {
        let mut gpu = Gpu::new(profile, ExecMode::Timing).unwrap();
        let input = gpu.alloc_host(NZ * SLICE, true).unwrap();
        let output = gpu.alloc_host(NZ * SLICE, true).unwrap();
        let spec = RegionSpec::new(Schedule::static_(1, 3))
            .with_map(MapSpec {
                name: "in".into(),
                dir: MapDir::To,
                split: SplitSpec::OneD {
                    offset: Affine::shifted(-1),
                    window: 3,
                    extent: NZ,
                    slice_elems: SLICE,
                },
            })
            .with_map(MapSpec {
                name: "out".into(),
                dir: MapDir::From,
                split: SplitSpec::OneD {
                    offset: Affine::IDENTITY,
                    window: 1,
                    extent: NZ,
                    slice_elems: SLICE,
                },
            });
        let region = Region::new(spec, 1, (NZ - 1) as i64, vec![input, output]);
        (gpu, region)
    }

    fn builder(ctx: &ChunkCtxAlias) -> KernelLaunch {
        let n = (ctx.k1 - ctx.k0) as u64;
        KernelLaunch::cost_only(
            "probe",
            KernelCost {
                flops: n * SLICE as u64 * 8,
                bytes: n * SLICE as u64 * 8,
            },
        )
    }
    type ChunkCtxAlias = crate::view::ChunkCtx;

    #[test]
    fn autotune_beats_the_worst_static_choice_on_amd() {
        let (mut gpu, region) = setup(DeviceProfile::hd7970());
        let tuned = autotune(&gpu, &region, &builder, &TuneSpace::default()).unwrap();
        // The default strategy is analytic: no simulated sweep runs.
        assert_eq!(tuned.des_trials, 0);
        // On the AMD model, chunk size 1 is catastrophic (Figure 8); the
        // tuner must pick a larger chunk.
        match tuned.best {
            Schedule::Static { chunk_size, .. } => {
                assert!(chunk_size >= 8, "tuner picked chunk {chunk_size}")
            }
            other => panic!("{other:?}"),
        }
        // And the tuned run must beat the paper's default static[1,3].
        let mut dflt = region.clone();
        dflt.spec.schedule = Schedule::static_(1, 3);
        let worst = buffer_impl(&mut gpu, &dflt, &builder, &BufferOptions::default(), None)
            .map(expect_done)
            .unwrap();
        let (_, best) = run_autotuned(&mut gpu, &region, &builder, &TuneSpace::default()).unwrap();
        assert!(
            best.total.as_secs_f64() < 0.7 * worst.total.as_secs_f64(),
            "tuned {} vs default {}",
            best.total,
            worst.total
        );
    }

    #[test]
    fn model_agrees_with_the_exhaustive_oracle_on_amd() {
        let (gpu, region) = setup(DeviceProfile::hd7970());
        let space = TuneSpace::default();
        let model = autotune_with(&gpu, &region, &builder, &space, TuneStrategy::Model).unwrap();
        let oracle =
            autotune_with(&gpu, &region, &builder, &space, TuneStrategy::Exhaustive).unwrap();
        assert_eq!(oracle.des_trials, oracle.trials.len());
        // The model's pick, looked up in the oracle's measured grid, must
        // be close to the true optimum (within 10 % here; the proptest
        // suite checks a looser bound across random shapes).
        let (mc, ms) = match model.best {
            Schedule::Static {
                chunk_size,
                num_streams,
            } => (chunk_size, num_streams),
            other => panic!("{other:?}"),
        };
        let picked = oracle
            .trials
            .iter()
            .find(|t| t.chunk == mc && t.streams == ms)
            .and_then(|t| t.time)
            .expect("model picked an infeasible cell");
        assert!(
            picked.as_secs_f64() <= 1.10 * oracle.best_time.as_secs_f64(),
            "model pick {}x{} measures {} vs true best {}",
            mc,
            ms,
            picked,
            oracle.best_time
        );
    }

    #[test]
    fn best_time_is_minimum_of_trials() {
        let (gpu, region) = setup(DeviceProfile::k40m());
        let tuned = autotune(&gpu, &region, &builder, &TuneSpace::default()).unwrap();
        let min = tuned
            .trials
            .iter()
            .filter_map(|t| t.time)
            .min()
            .unwrap();
        assert_eq!(tuned.best_time, min);
        assert_eq!(
            tuned.trials.len(),
            TuneSpace::default().chunks.len() * TuneSpace::default().streams.len()
        );
    }

    #[test]
    fn infeasible_configs_are_skipped_not_fatal() {
        let (gpu, mut region) = setup(DeviceProfile::k40m());
        // A limit only the smallest configurations can meet.
        region.spec.mem_limit = Some(6 * SLICE as u64 * 4);
        for strategy in [TuneStrategy::Model, TuneStrategy::Exhaustive] {
            let tuned = autotune_with(&gpu, &region, &builder, &TuneSpace::default(), strategy)
                .unwrap();
            assert!(tuned.trials.iter().any(|t| t.time.is_some()));
            // The counter and the per-trial record must agree (the
            // resolver *shrinks* oversized schedules, so a limit above
            // the minimum footprint skips nothing — every cell resolves).
            assert_eq!(
                tuned.infeasible_skipped,
                tuned.trials.iter().filter(|t| t.time.is_none()).count(),
                "{strategy:?} counter disagrees with trials"
            );
        }
    }

    #[test]
    fn empty_space_is_an_error() {
        let (gpu, region) = setup(DeviceProfile::k40m());
        let err = autotune(
            &gpu,
            &region,
            &builder,
            &TuneSpace {
                chunks: vec![],
                streams: vec![1],
            },
        )
        .unwrap_err();
        assert!(matches!(err, RtError::Spec(_)));
    }
}

//! Auto-tuning scheduler — the paper's §VII outlook ("integrate a
//! performance model in an autotuning scheduler").
//!
//! The performance model *is* the device simulator: candidate
//! `(chunk_size, num_streams)` schedules are executed against a
//! timing-mode twin of the caller's context (phantom data, cost model
//! only), and the best-performing schedule is returned. Tuning therefore
//! never touches the caller's data and costs only simulated enqueues.

use gpsim::{Gpu, HostPool, SimTime};

use crate::buffer::{buffer_impl, BufferOptions};
use crate::error::{RtError, RtResult};
use crate::exec::{expect_done, KernelBuilder, Region};
use crate::report::RunReport;
use crate::spec::Schedule;

/// The candidate grid explored by [`autotune`].
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// Candidate chunk sizes.
    pub chunks: Vec<usize>,
    /// Candidate stream counts.
    pub streams: Vec<usize>,
}

impl Default for TuneSpace {
    /// Powers of two up to 64 iterations per chunk × 1–5 streams — a
    /// superset of every configuration the paper explores in Figures 4,
    /// 7 and 8.
    fn default() -> Self {
        TuneSpace {
            chunks: vec![1, 2, 4, 8, 16, 32, 64],
            streams: vec![1, 2, 3, 4, 5],
        }
    }
}

/// One tuning trial.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// Chunk size tried.
    pub chunk: usize,
    /// Stream count tried.
    pub streams: usize,
    /// Simulated region time (`None` if the configuration failed, e.g.
    /// exceeded the memory limit).
    pub time: Option<SimTime>,
}

/// Result of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning schedule.
    pub best: Schedule,
    /// Its simulated region time.
    pub best_time: SimTime,
    /// Every trial, in sweep order.
    pub trials: Vec<Trial>,
}

/// Sweep the tune space on a timing-mode twin of `gpu` and return the
/// fastest schedule for this region (Pipelined-buffer model).
pub fn autotune(
    gpu: &Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
) -> RtResult<TuneResult> {
    if space.chunks.is_empty() || space.streams.is_empty() {
        return Err(RtError::Spec("empty tuning space".into()));
    }
    region.validate_binding(gpu)?;

    // Snapshot everything a worker needs to rebuild the timing-mode twin
    // (the caller's context itself is !Send): device profile plus the
    // shape and pinnedness of every bound host array — pinnedness
    // affects transfer cost, and allocation order preserves buffer ids.
    let profile = gpu.profile().clone();
    let mut array_shapes = Vec::with_capacity(region.arrays.len());
    for &h in &region.arrays {
        array_shapes.push((gpu.host_len(h)?, gpu.host_pinned(h)?));
    }

    let candidates: Vec<(usize, usize)> = space
        .chunks
        .iter()
        .flat_map(|&c| space.streams.iter().map(move |&s| (c, s)))
        .collect();

    // One twin per trial, built inside the worker: trials are fully
    // isolated simulations, so the grid fans out over the sweep pool.
    let results = crate::sweep::sweep_map(candidates.len(), |i| {
        let (chunk, streams) = candidates[i];
        let run = || -> RtResult<RunReport> {
            let pool = HostPool::new(gpsim::ExecMode::Timing);
            let mut twin = Gpu::with_host_pool(profile.clone(), pool)?;
            // Probe twins only need the scalar report (total time); skip
            // timeline construction so probing stays cheap.
            twin.set_timeline_enabled(false);
            let mut twin_arrays = Vec::with_capacity(array_shapes.len());
            for &(len, pinned) in &array_shapes {
                twin_arrays.push(twin.alloc_host(len, pinned)?);
            }
            let mut candidate =
                Region::new(region.spec.clone(), region.lo, region.hi, twin_arrays);
            candidate.spec.schedule = Schedule::static_(chunk, streams);
            buffer_impl(&mut twin, &candidate, builder, &BufferOptions::default(), None)
                .map(expect_done)
        };
        run().map(|rep| rep.total)
    });

    // Fold in grid order: the winner on ties is the earliest candidate,
    // exactly as the serial loop chose it.
    let mut trials = Vec::new();
    let mut best: Option<(Schedule, SimTime)> = None;
    for (&(chunk, streams), result) in candidates.iter().zip(results) {
        let time = match result {
            Ok(t) => {
                if best.is_none() || t < best.as_ref().unwrap().1 {
                    best = Some((Schedule::static_(chunk, streams), t));
                }
                Some(t)
            }
            // Infeasible configurations (memory limit) are skipped.
            Err(RtError::MemLimitInfeasible { .. }) => None,
            Err(e) => return Err(e),
        };
        trials.push(Trial {
            chunk,
            streams,
            time,
        });
    }
    let (best, best_time) =
        best.ok_or_else(|| RtError::Spec("no feasible schedule in tuning space".into()))?;
    Ok(TuneResult {
        best,
        best_time,
        trials,
    })
}

/// Tune, then run the region with the winning schedule on the caller's
/// context. Returns the tuning result alongside the real run's report.
pub fn run_autotuned(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
) -> RtResult<(TuneResult, RunReport)> {
    let tuned = autotune(gpu, region, builder, space)?;
    let mut best_region = region.clone();
    best_region.spec.schedule = tuned.best;
    let report = buffer_impl(gpu, &best_region, builder, &BufferOptions::default(), None)
        .map(expect_done)?;
    Ok((tuned, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Affine, MapDir, MapSpec, RegionSpec, SplitSpec};
    use gpsim::{DeviceProfile, ExecMode, KernelCost, KernelLaunch};

    const NZ: usize = 64;
    const SLICE: usize = 1 << 18; // 1 MB slices

    fn setup(profile: DeviceProfile) -> (Gpu, Region) {
        let mut gpu = Gpu::new(profile, ExecMode::Timing).unwrap();
        let input = gpu.alloc_host(NZ * SLICE, true).unwrap();
        let output = gpu.alloc_host(NZ * SLICE, true).unwrap();
        let spec = RegionSpec::new(Schedule::static_(1, 3))
            .with_map(MapSpec {
                name: "in".into(),
                dir: MapDir::To,
                split: SplitSpec::OneD {
                    offset: Affine::shifted(-1),
                    window: 3,
                    extent: NZ,
                    slice_elems: SLICE,
                },
            })
            .with_map(MapSpec {
                name: "out".into(),
                dir: MapDir::From,
                split: SplitSpec::OneD {
                    offset: Affine::IDENTITY,
                    window: 1,
                    extent: NZ,
                    slice_elems: SLICE,
                },
            });
        let region = Region::new(spec, 1, (NZ - 1) as i64, vec![input, output]);
        (gpu, region)
    }

    fn builder(ctx: &ChunkCtxAlias) -> KernelLaunch {
        let n = (ctx.k1 - ctx.k0) as u64;
        KernelLaunch::cost_only(
            "probe",
            KernelCost {
                flops: n * SLICE as u64 * 8,
                bytes: n * SLICE as u64 * 8,
            },
        )
    }
    type ChunkCtxAlias = crate::view::ChunkCtx;

    #[test]
    fn autotune_beats_the_worst_static_choice_on_amd() {
        let (mut gpu, region) = setup(DeviceProfile::hd7970());
        let tuned = autotune(&gpu, &region, &builder, &TuneSpace::default()).unwrap();
        // On the AMD model, chunk size 1 is catastrophic (Figure 8); the
        // tuner must pick a larger chunk.
        match tuned.best {
            Schedule::Static { chunk_size, .. } => {
                assert!(chunk_size >= 8, "tuner picked chunk {chunk_size}")
            }
            other => panic!("{other:?}"),
        }
        // And the tuned run must beat the paper's default static[1,3].
        let mut dflt = region.clone();
        dflt.spec.schedule = Schedule::static_(1, 3);
        let worst = buffer_impl(&mut gpu, &dflt, &builder, &BufferOptions::default(), None)
            .map(expect_done)
            .unwrap();
        let (_, best) = run_autotuned(&mut gpu, &region, &builder, &TuneSpace::default()).unwrap();
        assert!(
            best.total.as_secs_f64() < 0.7 * worst.total.as_secs_f64(),
            "tuned {} vs default {}",
            best.total,
            worst.total
        );
    }

    #[test]
    fn best_time_is_minimum_of_trials() {
        let (gpu, region) = setup(DeviceProfile::k40m());
        let tuned = autotune(&gpu, &region, &builder, &TuneSpace::default()).unwrap();
        let min = tuned
            .trials
            .iter()
            .filter_map(|t| t.time)
            .min()
            .unwrap();
        assert_eq!(tuned.best_time, min);
        assert_eq!(
            tuned.trials.len(),
            TuneSpace::default().chunks.len() * TuneSpace::default().streams.len()
        );
    }

    #[test]
    fn infeasible_configs_are_skipped_not_fatal() {
        let (gpu, mut region) = setup(DeviceProfile::k40m());
        // A limit only the smallest configurations can meet.
        region.spec.mem_limit = Some(6 * SLICE as u64 * 4);
        let tuned = autotune(&gpu, &region, &builder, &TuneSpace::default()).unwrap();
        assert!(tuned.trials.iter().any(|t| t.time.is_some()));
    }

    #[test]
    fn empty_space_is_an_error() {
        let (gpu, region) = setup(DeviceProfile::k40m());
        let err = autotune(
            &gpu,
            &region,
            &builder,
            &TuneSpace {
                chunks: vec![],
                streams: vec![1],
            },
        )
        .unwrap_err();
        assert!(matches!(err, RtError::Spec(_)));
    }
}

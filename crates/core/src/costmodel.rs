//! Analytic makespan model and O(1) schedule picking — the paper's §VII
//! outlook ("integrate a performance model in an autotuning scheduler"),
//! done analytically instead of by simulation.
//!
//! [`CostModel::predict`] estimates the makespan of a region under any
//! [`ExecModel`] directly from the [`DeviceProfile`] constants (bandwidth
//! ramp, API overhead, dispatch cost, duplex factor) and the
//! [`RegionSpec`](crate::RegionSpec) shape. The estimate is a **forward
//! recurrence** over the driver's exact enqueue order: per command,
//! `start = max(host clock, stream ready, engine free)` and
//! `end = start + dispatch + duration`, with the host clock advancing by
//! the per-call API overhead. No event queue, no reordering, no device
//! state — evaluating a candidate costs microseconds, so scanning a whole
//! chunk×stream grid ([`ModelTuner::pick`]) replaces the brute-force DES
//! sweep that `autotune` used to run (kept as
//! [`TuneStrategy::Exhaustive`](crate::TuneStrategy) — the validation
//! oracle).
//!
//! Two knowingly coarse spots (quantified by `figures model`, see
//! EXPERIMENTS.md):
//!
//! * **Engine order.** The DES dispatches the lowest-sequence *ready*
//!   command; the recurrence serves commands in enqueue order. The two
//!   differ when a stream enqueues early but becomes ready late — rare
//!   under round-robin issue, and the reason errors grow at extreme
//!   chunk counts.
//! * **Duplex contention.** A copy dispatched while the opposite copy
//!   engine is busy runs at `duplex_factor` bandwidth for its whole
//!   duration. The recurrence tests "busy" against the opposite engine's
//!   last predicted interval, which can mis-classify copies near
//!   interval edges.
//!
//! [`Calibration`] multipliers close the loop online: after a measured
//! run, per-component ratios (H2D/D2H/compute/host) nudge the model, and
//! [`run_model_online`] feeds the stall attributor's verdict back into
//! [`ModelTuner`] to re-pick the chunk size between iterations.

use gpsim::{
    DeviceProfile, ExecMode, Gpu, HostPool, KernelCost, SimTime, StallCause, ELEM_BYTES,
};

use crate::autotune::{Trial, TuneResult, TuneSpace};
use crate::buffer::{buffer_impl_with, classify_chunks, compile_plan, BufferOptions};
use crate::error::{RtError, RtResult};
use crate::exec::{expect_done, KernelBuilder, PipelinedOptions, Region};
use crate::plan::{build_window_table, chunk_ranges, resolve_plan, CompiledPlan};
use crate::report::{ExecModel, RunReport};
use crate::spec::{Schedule, SplitSpec};
use crate::view::{ArrayView, ChunkCtx};

/// The resource the model predicts limits a run's makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Host-side API overhead (enqueues, polling) dominates.
    Host,
    /// The host→device copy engine is the busiest resource.
    H2d,
    /// The compute engine is the busiest resource.
    Compute,
    /// The device→host copy engine is the busiest resource.
    D2h,
    /// No single engine dominates; the serial chain of one stream's
    /// commands (copy → kernel → copy per chunk) sets the pace.
    StreamChain,
}

/// Per-component multipliers the online loop learns from measured runs.
///
/// All start at 1.0 (trust the profile); each update multiplies a
/// component by the clamped measured/predicted ratio, and the running
/// product is clamped to `[0.25, 4]` so one bad sample cannot wedge the
/// model.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// H2D transfer-time multiplier.
    pub h2d: f64,
    /// D2H transfer-time multiplier.
    pub d2h: f64,
    /// Kernel-time multiplier.
    pub kernel: f64,
    /// Host API-overhead multiplier.
    pub host: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            h2d: 1.0,
            d2h: 1.0,
            kernel: 1.0,
            host: 1.0,
        }
    }
}

fn blend(cur: f64, predicted: SimTime, measured: SimTime) -> f64 {
    let (p, m) = (predicted.as_secs_f64(), measured.as_secs_f64());
    if p <= 0.0 || m <= 0.0 {
        return cur;
    }
    // One sample may be noisy (short run, spike): cap its pull to 2×.
    (cur * (m / p).clamp(0.5, 2.0)).clamp(0.25, 4.0)
}

impl Calibration {
    /// Fold a measured run into the multipliers. `predicted` must be the
    /// prediction for the same schedule that produced `measured`.
    pub fn update(&mut self, predicted: &Prediction, measured: &RunReport) {
        self.h2d = blend(self.h2d, predicted.h2d, measured.h2d);
        self.d2h = blend(self.d2h, predicted.d2h, measured.d2h);
        self.kernel = blend(self.kernel, predicted.kernel, measured.kernel);
        self.host = blend(self.host, predicted.host_api, measured.host_api);
    }

    /// Fold measured per-engine busy times into the multipliers, leaving
    /// `host` untouched. This is the trace-calibration path: engine busy
    /// times are exactly recoverable from an imported trace, but host
    /// API time is not (polling time leaves no spans), so the host
    /// component stays with whatever the profile fit determined.
    pub fn update_engines(
        &mut self,
        predicted: &Prediction,
        h2d: SimTime,
        d2h: SimTime,
        kernel: SimTime,
    ) {
        self.h2d = blend(self.h2d, predicted.h2d, h2d);
        self.d2h = blend(self.d2h, predicted.d2h, d2h);
        self.kernel = blend(self.kernel, predicted.kernel, kernel);
    }
}

/// One analytic makespan estimate.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Execution model the estimate is for.
    pub model: ExecModel,
    /// Chunk size actually predicted (after `pipeline_mem_limit`
    /// shrinking — may be smaller than requested).
    pub chunk_size: usize,
    /// Stream count actually predicted (after shrinking).
    pub num_streams: usize,
    /// Predicted end-to-end region time.
    pub total: SimTime,
    /// Predicted H2D engine busy time.
    pub h2d: SimTime,
    /// Predicted D2H engine busy time.
    pub d2h: SimTime,
    /// Predicted compute engine busy time.
    pub kernel: SimTime,
    /// Predicted host time inside API calls and polling.
    pub host_api: SimTime,
    /// Which resource the model says sets the pace.
    pub bottleneck: Bottleneck,
}

/// Forward-recurrence evaluator: the state of the host clock, the three
/// engines, and each stream's in-order FIFO, advanced one command at a
/// time in enqueue order. Times are f64 seconds from region start.
struct Walk {
    api: f64,
    dispatch: f64,
    duplex: f64,
    host: f64,
    h2d_free: f64,
    h2d_from: f64,
    d2h_free: f64,
    d2h_from: f64,
    comp_free: f64,
    stream_ready: Vec<f64>,
    /// Per-stream sum of device work — the serial-chain bound.
    chain: Vec<f64>,
    host_api: f64,
    h2d: f64,
    d2h: f64,
    kernel: f64,
    /// Busy intervals predicted for each copy engine *this* pass.
    h2d_ivals: Vec<(f64, f64)>,
    d2h_ivals: Vec<(f64, f64)>,
    /// The previous fixed-point pass's schedule; when present, duplex
    /// contention is judged against it (it knows the whole run, including
    /// opposite-engine work this pass hasn't walked yet).
    prev: Option<EngineIvals>,
}

/// Both copy engines' predicted busy intervals from one walk pass.
struct EngineIvals {
    h2d: Vec<(f64, f64)>,
    d2h: Vec<(f64, f64)>,
}

/// Is instant `t` inside any of the (start-sorted, disjoint) intervals?
fn covered(ivals: &[(f64, f64)], t: f64) -> bool {
    let i = ivals.partition_point(|&(s, _)| s <= t);
    i > 0 && t < ivals[i - 1].1
}

impl Walk {
    fn new(profile: &DeviceProfile, calib: &Calibration, live_streams: usize, lanes: usize) -> Self {
        Walk {
            api: profile.api_overhead.as_secs_f64() * calib.host,
            dispatch: profile
                .dispatch_overhead(live_streams)
                .as_secs_f64(),
            duplex: profile.duplex_factor,
            host: 0.0,
            h2d_free: 0.0,
            h2d_from: 0.0,
            d2h_free: 0.0,
            d2h_from: 0.0,
            comp_free: 0.0,
            stream_ready: vec![0.0; lanes],
            chain: vec![0.0; lanes],
            host_api: 0.0,
            h2d: 0.0,
            d2h: 0.0,
            kernel: 0.0,
            h2d_ivals: Vec::new(),
            d2h_ivals: Vec::new(),
            prev: None,
        }
    }

    fn api_call(&mut self) {
        self.host += self.api;
        self.host_api += self.api;
    }

    fn host_busy(&mut self, t: f64) {
        self.host += t;
        self.host_api += t;
    }

    /// Enqueue a copy (`h2d` direction flag) of base duration `dur` on
    /// stream lane `s`.
    fn copy(&mut self, s: usize, dur: f64, h2d: bool) {
        self.api_call();
        let (free, opp_from, opp_free) = if h2d {
            (self.h2d_free, self.d2h_from, self.d2h_free)
        } else {
            (self.d2h_free, self.h2d_from, self.h2d_free)
        };
        let start = self.host.max(self.stream_ready[s]).max(free);
        // Duplex contention, decided at dispatch exactly like the DES
        // ("is the opposite copy engine busy right now?"). The first
        // fixed-point pass can only consult the opposite engine's last
        // walked interval; later passes consult the previous pass's full
        // schedule, which also knows about opposite-engine work enqueued
        // *after* this command.
        let opp_busy = match &self.prev {
            Some(p) => covered(if h2d { &p.d2h } else { &p.h2d }, start),
            None => opp_from <= start && start < opp_free,
        } && self.duplex < 1.0;
        let d = self.dispatch + if opp_busy { dur / self.duplex } else { dur };
        let end = start + d;
        if h2d {
            self.h2d_from = start;
            self.h2d_free = end;
            self.h2d += d;
            self.h2d_ivals.push((start, end));
        } else {
            self.d2h_from = start;
            self.d2h_free = end;
            self.d2h += d;
            self.d2h_ivals.push((start, end));
        }
        self.stream_ready[s] = end;
        self.chain[s] += d;
    }

    /// Enqueue a kernel of base duration `dur` on stream lane `s`.
    fn launch(&mut self, s: usize, dur: f64) {
        self.api_call();
        let start = self.host.max(self.stream_ready[s]).max(self.comp_free);
        let d = self.dispatch + dur;
        let end = start + d;
        self.comp_free = end;
        self.stream_ready[s] = end;
        self.kernel += d;
        self.chain[s] += d;
    }

    /// `create_event` + `record_event`: two API calls, a zero-duration
    /// stream command. Returns the predicted event completion time.
    fn create_record(&mut self, s: usize) -> f64 {
        self.api_call();
        self.api_call();
        let t = self.host.max(self.stream_ready[s]);
        self.stream_ready[s] = t;
        t
    }

    /// `wait_event`: stream lane `s` may not run further commands until
    /// the event's predicted time.
    fn wait(&mut self, s: usize, event_time: f64) {
        self.api_call();
        self.stream_ready[s] = self.stream_ready[s].max(self.host).max(event_time);
    }

    /// `stream_synchronize`: host blocks until lane `s` drains.
    fn stream_sync(&mut self, s: usize) {
        self.api_call();
        self.host = self.host.max(self.stream_ready[s]);
    }

    /// Final `synchronize`: host blocks until every lane drains. Returns
    /// the predicted makespan.
    fn sync_all(&mut self) -> f64 {
        self.api_call();
        let done = self.stream_ready.iter().copied().fold(0.0, f64::max);
        self.host = self.host.max(done);
        self.host
    }

    /// Busiest-resource classification from the accumulated sums.
    fn bottleneck(&self) -> Bottleneck {
        let chain = self.chain.iter().copied().fold(0.0, f64::max);
        let candidates = [
            (self.host_api, Bottleneck::Host),
            (self.h2d, Bottleneck::H2d),
            (self.kernel, Bottleneck::Compute),
            (self.d2h, Bottleneck::D2h),
            (chain, Bottleneck::StreamChain),
        ];
        candidates
            .into_iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, b)| b)
            .unwrap_or(Bottleneck::Host)
    }

    fn finish(mut self, model: ExecModel, chunk_size: usize, num_streams: usize) -> Prediction {
        let total = self.sync_all();
        Prediction {
            model,
            chunk_size,
            num_streams,
            total: SimTime::from_secs_f64(total),
            h2d: SimTime::from_secs_f64(self.h2d),
            d2h: SimTime::from_secs_f64(self.d2h),
            kernel: SimTime::from_secs_f64(self.kernel),
            host_api: SimTime::from_secs_f64(self.host_api),
            bottleneck: self.bottleneck(),
        }
    }
}

/// Analytic makespan model for one bound region (see module docs).
///
/// Holds a throwaway timing-mode twin context whose only job is to own a
/// placeholder allocation for kernel-cost probing: the region's builder
/// is called with 1-slot ring views to read each chunk's declared
/// [`KernelCost`] — the kernel body is never executed, and no command is
/// ever enqueued anywhere.
pub struct CostModel<'a> {
    region: &'a Region,
    builder: &'a KernelBuilder<'a>,
    profile: DeviceProfile,
    pinned: Vec<bool>,
    /// Learned per-component multipliers (all 1.0 until calibrated).
    pub calibration: Calibration,
    probe_views: Vec<ArrayView>,
    _twin: Gpu,
}

impl<'a> CostModel<'a> {
    /// Build a model for `region` as bound on `gpu` (the profile and the
    /// pinnedness of each bound array are snapshotted; the context itself
    /// is not retained).
    pub fn new(gpu: &Gpu, region: &'a Region, builder: &'a KernelBuilder<'a>) -> RtResult<Self> {
        region.validate_binding(gpu)?;
        let profile = gpu.profile().clone();
        let mut pinned = Vec::with_capacity(region.arrays.len());
        for &h in &region.arrays {
            pinned.push(gpu.host_pinned(h)?);
        }
        let pool = HostPool::new(ExecMode::Timing);
        let mut twin = Gpu::with_host_pool(profile.clone(), pool)?;
        twin.set_timeline_enabled(false);
        let probe = twin.alloc(1)?;
        let probe_views = region
            .spec
            .maps
            .iter()
            .map(|m| match &m.split {
                SplitSpec::OneD { slice_elems, .. } => ArrayView::ring_1d(probe, *slice_elems, 1),
                SplitSpec::ColBlocks {
                    rows, block_cols, ..
                } => ArrayView::ring_2d(probe, *block_cols, *block_cols, *rows, 1),
            })
            .collect();
        Ok(CostModel {
            region,
            builder,
            profile,
            pinned,
            calibration: Calibration::default(),
            probe_views,
            _twin: twin,
        })
    }

    /// The device profile predictions currently use.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Replace the device profile predictions use — e.g. with one fitted
    /// from an imported trace ([`fit_profile`](crate::fit_profile)) —
    /// without rebinding the region.
    pub fn set_profile(&mut self, profile: DeviceProfile) {
        self.profile = profile;
    }

    /// The builder's declared cost for chunk `[k0, k1)` (probe only — the
    /// kernel is constructed against placeholder views, never run).
    pub fn kernel_cost(&self, k0: i64, k1: i64) -> KernelCost {
        let ctx = ChunkCtx {
            k0,
            k1,
            views: self.probe_views.clone(),
        };
        (self.builder)(&ctx).cost
    }

    fn kernel_secs(&self, k0: i64, k1: i64, inflate: f64) -> f64 {
        let c = self.kernel_cost(k0, k1);
        let flops = (c.flops as f64 * inflate) as u64;
        let bytes = (c.bytes as f64 * inflate) as u64;
        self.profile.kernel_time(flops, bytes).as_secs_f64() * self.calibration.kernel
    }

    /// H2D seconds for `slices` consecutive slices of map `i`.
    fn h2d_secs(&self, i: usize, slices: usize) -> f64 {
        self.dma_secs(i, slices, true)
    }

    /// D2H seconds for `slices` consecutive slices of map `i`.
    fn d2h_secs(&self, i: usize, slices: usize) -> f64 {
        self.dma_secs(i, slices, false)
    }

    fn dma_secs(&self, i: usize, slices: usize, h2d: bool) -> f64 {
        let pinned = self.pinned[i];
        let p = &self.profile;
        let t = match &self.region.spec.maps[i].split {
            SplitSpec::OneD { slice_elems, .. } => {
                let bytes = slices as u64 * *slice_elems as u64 * ELEM_BYTES;
                if h2d {
                    p.h2d_time(bytes, pinned)
                } else {
                    p.d2h_time(bytes, pinned)
                }
            }
            SplitSpec::ColBlocks {
                rows, block_cols, ..
            } => {
                let row_bytes = slices as u64 * *block_cols as u64 * ELEM_BYTES;
                if h2d {
                    p.h2d_time_2d(*rows, row_bytes, pinned)
                } else {
                    p.d2h_time_2d(*rows, row_bytes, pinned)
                }
            }
        };
        t.as_secs_f64()
            * if h2d {
                self.calibration.h2d
            } else {
                self.calibration.d2h
            }
    }

    /// Predict the makespan of this region under `model` with the given
    /// requested schedule (`chunk`/`streams` are ignored by
    /// [`ExecModel::Naive`]). Buffered predictions resolve the plan
    /// first, so `pipeline_mem_limit` shrinking is mirrored exactly;
    /// an infeasible limit surfaces as
    /// [`RtError::MemLimitInfeasible`](crate::RtError).
    pub fn predict(&self, model: ExecModel, chunk: usize, streams: usize) -> RtResult<Prediction> {
        match model {
            ExecModel::Naive => Ok(self.predict_naive()),
            ExecModel::Pipelined => Ok(self.predict_pipelined(chunk, streams)),
            ExecModel::PipelinedBuffer | ExecModel::Auto => self.predict_buffer(chunk, streams),
        }
    }

    /// Naive model: allocs, synchronous full copies, one kernel, all on
    /// the default stream — an exact serial recurrence.
    fn predict_naive(&self) -> Prediction {
        let region = self.region;
        let spec = &region.spec;
        let mut w = Walk::new(&self.profile, &self.calibration, 1, 1);
        for _ in &spec.maps {
            w.api_call(); // alloc per map
        }
        for (i, m) in spec.maps.iter().enumerate() {
            if m.dir.is_input() {
                w.copy(0, self.h2d_secs(i, m.split.extent()), true);
                w.stream_sync(0);
            }
        }
        w.launch(0, self.kernel_secs(region.lo, region.hi, 1.0));
        w.stream_sync(0);
        for (i, m) in spec.maps.iter().enumerate() {
            if m.dir.is_output() {
                w.copy(0, self.d2h_secs(i, m.split.extent()), false);
                w.stream_sync(0);
            }
        }
        // The driver ends without a device-wide synchronize (the last
        // stream_synchronize drained everything), so drop the one
        // `sync_all` would add.
        let extra = SimTime::from_secs_f64(
            self.profile.api_overhead.as_secs_f64() * self.calibration.host,
        );
        let mut pred = w.finish(ExecModel::Naive, 1, 1);
        pred.total -= extra;
        pred.host_api -= extra;
        pred
    }

    /// Pipelined model: full-size device arrays, disjoint input coverage
    /// via per-map high-water marks, per-enqueue polling charge — the
    /// recurrence mirrors the driver's loop shape exactly.
    fn predict_pipelined(&self, chunk: usize, streams: usize) -> Prediction {
        let region = self.region;
        let spec = &region.spec;
        let iters = (region.hi - region.lo).max(0) as usize;
        let chunk = chunk.min(iters.max(1)).max(1);
        let ns = streams.max(1);
        let chunks = chunk_ranges(region.lo, region.hi, chunk);
        let poll = PipelinedOptions::default()
            .poll_time(self.profile.api_overhead, ns)
            .as_secs_f64()
            * self.calibration.host;

        // Per-map copy state, replicating the driver exactly: a high-water
        // mark (inputs are copied in disjoint [hwm, b) extensions) and a
        // per-slice owner map (which chunk's copy brought each slice in).
        let bases: Vec<i64> = spec
            .maps
            .iter()
            .map(|m| m.split.needed_slices(region.lo, region.hi).0)
            .collect();

        let run_pass = |prev: Option<EngineIvals>| -> Walk {
            let mut w = Walk::new(&self.profile, &self.calibration, ns + 1, ns);
            w.prev = prev;
            for _ in &spec.maps {
                w.api_call(); // alloc per map
            }
            for _ in 0..ns {
                w.api_call(); // create_stream
            }
            let mut hwm = bases.clone();
            let mut owner: Vec<Vec<usize>> = spec
                .maps
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    let (a, b) = m.split.needed_slices(region.lo, region.hi);
                    debug_assert_eq!(a, bases[i]);
                    vec![usize::MAX; (b - a).max(0) as usize]
                })
                .collect();
            // h2d event time per chunk (None = chunk copied nothing).
            let mut h2d_event: Vec<Option<f64>> = vec![None; chunks.len()];

            for (c, &(k0, k1)) in chunks.iter().enumerate() {
                let s = c % ns;
                let mut copied_any = false;
                for (i, m) in spec.maps.iter().enumerate() {
                    if !m.dir.is_input() {
                        continue;
                    }
                    let (_, b) = m.split.needed_slices(k0, k1);
                    if hwm[i] >= b {
                        continue;
                    }
                    w.copy(s, self.h2d_secs(i, (b - hwm[i]) as usize), true);
                    w.host_busy(poll);
                    for sl in hwm[i]..b {
                        owner[i][(sl - bases[i]) as usize] = c;
                    }
                    hwm[i] = b;
                    copied_any = true;
                }
                if copied_any {
                    let t = w.create_record(s);
                    w.host_busy(poll);
                    h2d_event[c] = Some(t);
                }
                // Cross-stream RAW waits: owners of our window's slices
                // that ran on a different stream.
                let mut waits: Vec<usize> = Vec::new();
                for (i, m) in spec.maps.iter().enumerate() {
                    if !m.dir.is_input() {
                        continue;
                    }
                    let (a, b) = m.split.needed_slices(k0, k1);
                    for sl in a..b {
                        let o = owner[i][(sl - bases[i]) as usize];
                        if o != usize::MAX && o != c && o % ns != s && !waits.contains(&o) {
                            waits.push(o);
                        }
                    }
                }
                for &o in &waits {
                    if let Some(t) = h2d_event[o] {
                        w.wait(s, t);
                        w.host_busy(poll);
                    }
                }
                w.launch(s, self.kernel_secs(k0, k1, 1.0));
                w.host_busy(poll);
                for (i, m) in spec.maps.iter().enumerate() {
                    if !m.dir.is_output() {
                        continue;
                    }
                    let (a, b) = m.split.needed_slices(k0, k1);
                    if b > a {
                        w.copy(s, self.d2h_secs(i, (b - a) as usize), false);
                        w.host_busy(poll);
                    }
                }
            }
            w
        };
        fixed_point(run_pass).finish(ExecModel::Pipelined, chunk, ns)
    }

    /// Pipelined-buffer model: resolve the plan (mem-limit shrinking and
    /// all), classify the chunks with the *driver's own* classifier, and
    /// walk the compiled steps — so the recurrence sees the exact
    /// command sequence replay would issue.
    fn predict_buffer(&self, chunk: usize, streams: usize) -> RtResult<Prediction> {
        let region = self.region;
        let mut spec = region.spec.clone();
        spec.schedule = Schedule::static_(chunk, streams);
        let plan = resolve_plan(&spec, &self.profile, region.lo, region.hi)?;
        let table = build_window_table(&spec, &plan.chunks, &[])?;
        let ns = plan.num_streams;
        let chunk_stream: Vec<usize> = (0..plan.chunks.len()).map(|c| c % ns).collect();
        let (steps, _) = classify_chunks(&spec, &plan, &table, &chunk_stream, true);
        let infl = 1.0 + spec.index_overhead;

        let run_pass = |prev: Option<EngineIvals>| -> Walk {
            let mut w = Walk::new(&self.profile, &self.calibration, ns + 1, ns);
            w.prev = prev;
            for _ in &spec.maps {
                w.api_call(); // ring alloc per map
            }
            for _ in 0..ns {
                w.api_call(); // create_stream
            }

            let mut h2d_event: Vec<Option<f64>> = vec![None; plan.chunks.len()];
            let mut kernel_event: Vec<f64> = vec![0.0; plan.chunks.len()];
            let mut d2h_event: Vec<Option<f64>> = vec![None; plan.chunks.len()];
            let ev =
                |h2d: &[Option<f64>], k: &[f64], d2h: &[Option<f64>], ch: usize, kind| match kind {
                    crate::plan::EvKind::H2d => h2d[ch].unwrap_or(0.0),
                    crate::plan::EvKind::Kernel => k[ch],
                    crate::plan::EvKind::D2h => d2h[ch].unwrap_or(0.0),
                };

            for (c, step) in steps.iter().enumerate() {
                let (k0, k1) = plan.chunks[c];
                let s = step.stream;
                for &(ch, kind) in &step.copy_waits {
                    let t = ev(&h2d_event, &kernel_event, &d2h_event, ch, kind);
                    w.wait(s, t);
                }
                for &(i, _, len) in &step.copy_runs {
                    w.copy(s, self.h2d_secs(i, len), true);
                }
                if !step.copy_runs.is_empty() {
                    h2d_event[c] = Some(w.create_record(s));
                }
                for &(ch, kind, _) in &step.kernel_waits {
                    let t = ev(&h2d_event, &kernel_event, &d2h_event, ch, kind);
                    w.wait(s, t);
                }
                w.launch(s, self.kernel_secs(k0, k1, infl));
                kernel_event[c] = w.create_record(s);
                for &(i, _, len) in &step.out_runs {
                    w.copy(s, self.d2h_secs(i, len), false);
                }
                if !step.out_runs.is_empty() {
                    d2h_event[c] = Some(w.create_record(s));
                }
            }
            w
        };
        Ok(fixed_point(run_pass).finish(ExecModel::PipelinedBuffer, plan.chunk_size, ns))
    }
}

/// Run up to three walk passes, feeding each pass the previous pass's
/// engine schedules for the duplex decision, and stopping early once the
/// makespan estimate is stable to 0.1 %. Pass 1 only sees the opposite
/// engine's walked past; later passes see the whole run.
fn fixed_point(run_pass: impl Fn(Option<EngineIvals>) -> Walk) -> Walk {
    let mut w = run_pass(None);
    for _ in 0..2 {
        let before = w.stream_ready.iter().copied().fold(0.0, f64::max);
        let sched = EngineIvals {
            h2d: std::mem::take(&mut w.h2d_ivals),
            d2h: std::mem::take(&mut w.d2h_ivals),
        };
        w = run_pass(Some(sched));
        let after = w.stream_ready.iter().copied().fold(0.0, f64::max);
        if before > 0.0 && ((after - before) / before).abs() < 1e-3 {
            break;
        }
    }
    w
}

/// O(1) schedule picker: evaluates every `(chunk, streams)` candidate of
/// a [`TuneSpace`] analytically and returns the predicted-fastest one in
/// [`TuneResult`] form — the drop-in replacement for the DES-sweep grid.
pub struct ModelTuner<'a> {
    /// The model the picks come from (exposed so callers can calibrate
    /// it between picks).
    pub model: CostModel<'a>,
}

impl<'a> ModelTuner<'a> {
    /// Build a tuner for a bound region.
    pub fn new(gpu: &Gpu, region: &'a Region, builder: &'a KernelBuilder<'a>) -> RtResult<Self> {
        Ok(ModelTuner {
            model: CostModel::new(gpu, region, builder)?,
        })
    }

    /// Predict every candidate and return the analytically-fastest
    /// schedule. Infeasible cells (memory limit below the minimum
    /// footprint) get `time: None`. Issues **zero** DES trials.
    pub fn pick(&self, space: &TuneSpace) -> RtResult<TuneResult> {
        self.pick_where(space, |_, _| true)
    }

    /// [`ModelTuner::pick`] restricted to candidates passing `keep` —
    /// how the online loop encodes constraints like "chunk at least as
    /// large as the current one".
    pub fn pick_where(
        &self,
        space: &TuneSpace,
        keep: impl Fn(usize, usize) -> bool,
    ) -> RtResult<TuneResult> {
        if space.chunks.is_empty() || space.streams.is_empty() {
            return Err(RtError::Spec("empty tuning space".into()));
        }
        let mut trials = Vec::new();
        let mut best: Option<(Schedule, SimTime)> = None;
        let mut infeasible = 0usize;
        for &chunk in &space.chunks {
            for &streams in &space.streams {
                if !keep(chunk, streams) {
                    continue;
                }
                let time = match self.model.predict(ExecModel::PipelinedBuffer, chunk, streams) {
                    Ok(p) => {
                        if best.is_none() || p.total < best.as_ref().unwrap().1 {
                            best = Some((Schedule::static_(chunk, streams), p.total));
                        }
                        Some(p.total)
                    }
                    Err(RtError::MemLimitInfeasible { .. }) => {
                        infeasible += 1;
                        None
                    }
                    Err(e) => return Err(e),
                };
                trials.push(Trial {
                    chunk,
                    streams,
                    time,
                });
            }
        }
        let (best, best_time) =
            best.ok_or_else(|| RtError::Spec("no feasible schedule in tuning space".into()))?;
        Ok(TuneResult {
            best,
            best_time,
            trials,
            infeasible_skipped: infeasible,
            des_trials: 0,
        })
    }
}

/// One iteration of the online model-feedback loop.
#[derive(Debug, Clone, Copy)]
pub struct OnlineStep {
    /// Iteration index.
    pub iter: usize,
    /// Chunk size this iteration ran with.
    pub chunk: usize,
    /// Stream count this iteration ran with.
    pub streams: usize,
    /// The model's makespan prediction for this schedule (with the
    /// calibration in force when the iteration started).
    pub predicted: SimTime,
    /// The measured makespan.
    pub measured: SimTime,
    /// The stall attributor's dominant verdict for the compute engine
    /// (`None` when the run had no stalls to attribute).
    pub verdict: Option<StallCause>,
    /// Whether the verdict made the tuner re-pick (and recompile) the
    /// schedule for the *next* iteration.
    pub replanned: bool,
    /// Whether this iteration replayed a cached compiled plan.
    pub plan_reused: bool,
}

/// Result of [`run_model_online`].
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Per-iteration telemetry, in order.
    pub steps: Vec<OnlineStep>,
    /// The schedule in force after the last iteration.
    pub final_schedule: Schedule,
}

impl OnlineReport {
    /// Total measured time across all iterations.
    pub fn total(&self) -> SimTime {
        self.steps
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.measured)
    }

    /// How many iterations triggered a re-pick.
    pub fn replans(&self) -> usize {
        self.steps.iter().filter(|s| s.replanned).count()
    }
}

/// The dominant stall cause of the compute engine in a measured run:
/// with timeline recording on, the attributor's largest idle bucket;
/// otherwise a scalar comparison of engine busy times.
fn dominant_verdict(report: &RunReport) -> Option<StallCause> {
    let makespan = report.stalls.makespan_ns();
    if makespan > 0 {
        let compute = report.stalls.engine(gpsim::EngineKind::Compute);
        return StallCause::ALL
            .into_iter()
            .map(|c| (compute.stall(c), c))
            .max_by_key(|&(ns, _)| ns)
            .filter(|&(ns, _)| ns > 0)
            .map(|(_, c)| c);
    }
    // Timeline off: infer from the scalar phase breakdown.
    let buckets = [
        (report.host_api, StallCause::HostApi),
        (report.h2d, StallCause::WaitingOnH2D),
        (report.d2h, StallCause::WaitingOnD2H),
    ];
    buckets
        .into_iter()
        .filter(|&(t, _)| t > report.kernel)
        .max_by_key(|&(t, _)| t)
        .map(|(_, c)| c)
}

/// Run a region iteratively under the buffered model with the cost model
/// in the loop: pick the schedule analytically, compile once, replay the
/// compiled plan each iteration, and between iterations feed the stall
/// attributor's verdict back into the tuner — a ring-slot verdict pushes
/// toward deeper rings (larger `chunk × streams`), a host-API verdict
/// toward fewer, larger chunks — recompiling only when the pick changes.
pub fn run_model_online(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    space: &TuneSpace,
    iters: usize,
) -> RtResult<OnlineReport> {
    let mut tuner = ModelTuner::new(gpu, region, builder)?;
    let mut picked = tuner.pick(space)?.best;
    let mut steps = Vec::with_capacity(iters);
    let mut compiled: Option<CompiledPlan> = None;
    let opts = BufferOptions::default();
    for iter in 0..iters {
        let (chunk, streams) = match picked {
            Schedule::Static {
                chunk_size,
                num_streams,
            } => (chunk_size, num_streams),
            _ => unreachable!("tuner always picks static schedules"),
        };
        let mut it_region = region.clone();
        it_region.spec.schedule = Schedule::static_(chunk, streams);
        let predicted = tuner
            .model
            .predict(ExecModel::PipelinedBuffer, chunk, streams)?;
        if compiled.is_none() {
            compiled = Some(compile_plan(gpu, &it_region, builder, &opts)?);
        }
        let report = buffer_impl_with(
            gpu,
            &it_region,
            builder,
            &opts,
            None,
            compiled.as_ref(),
        )
        .map(expect_done)?;
        tuner.model.calibration.update(&predicted, &report);
        let verdict = dominant_verdict(&report);
        // Map the verdict to a constraint on the next pick.
        let constrained = match verdict {
            Some(StallCause::RingSlot) => {
                // Rings too shallow: insist on more slots in flight.
                let depth = chunk * streams;
                Some(tuner.pick_constrained(space, move |c, s| c * s > depth))
            }
            Some(StallCause::HostApi) => {
                // Host-bound: fewer, larger chunks.
                Some(tuner.pick_constrained(space, move |c, _| c >= chunk))
            }
            Some(StallCause::WaitingOnH2D) => {
                // Transfer-bound: bigger transfers ride the bandwidth
                // ramp better.
                Some(tuner.pick_constrained(space, move |c, _| c >= chunk))
            }
            _ => None,
        };
        let mut replanned = false;
        if let Some(next) = constrained.flatten() {
            if next != picked {
                picked = next;
                compiled = None;
                replanned = true;
            }
        }
        steps.push(OnlineStep {
            iter,
            chunk,
            streams,
            predicted: predicted.total,
            measured: report.total,
            verdict,
            replanned,
            plan_reused: report.plan_reused,
        });
    }
    Ok(OnlineReport {
        steps,
        final_schedule: picked,
    })
}

impl<'a> ModelTuner<'a> {
    /// [`ModelTuner::pick_where`], but a constraint that empties the
    /// space falls back to `None` instead of erroring (the online loop
    /// then keeps the current schedule).
    fn pick_constrained(
        &self,
        space: &TuneSpace,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Option<Schedule> {
        self.pick_where(space, keep).ok().map(|r| r.best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Affine, MapDir, MapSpec, RegionSpec};
    use gpsim::KernelLaunch;

    const NZ: usize = 64;
    const SLICE: usize = 1 << 14;

    fn setup(profile: DeviceProfile) -> (Gpu, Region) {
        let mut gpu = Gpu::new(profile, ExecMode::Timing).unwrap();
        let input = gpu.alloc_host(NZ * SLICE, true).unwrap();
        let output = gpu.alloc_host(NZ * SLICE, true).unwrap();
        let spec = RegionSpec::new(Schedule::static_(4, 3))
            .with_map(MapSpec {
                name: "in".into(),
                dir: MapDir::To,
                split: SplitSpec::OneD {
                    offset: Affine::shifted(-1),
                    window: 3,
                    extent: NZ,
                    slice_elems: SLICE,
                },
            })
            .with_map(MapSpec {
                name: "out".into(),
                dir: MapDir::From,
                split: SplitSpec::OneD {
                    offset: Affine::IDENTITY,
                    window: 1,
                    extent: NZ,
                    slice_elems: SLICE,
                },
            });
        let region = Region::new(spec, 1, (NZ - 1) as i64, vec![input, output]);
        (gpu, region)
    }

    fn builder(ctx: &ChunkCtx) -> KernelLaunch {
        let n = (ctx.k1 - ctx.k0) as u64;
        KernelLaunch::cost_only(
            "probe",
            KernelCost {
                flops: n * SLICE as u64 * 8,
                bytes: n * SLICE as u64 * 8,
            },
        )
    }

    #[test]
    fn predictions_track_the_simulator_within_tolerance() {
        use crate::buffer::buffer_impl;
        use crate::exec::{naive_impl, pipelined_impl};
        let (mut gpu, region) = setup(DeviceProfile::k40m());
        gpu.set_timeline_enabled(false);
        let model = CostModel::new(&gpu, &region, &builder).unwrap();

        let naive_pred = model.predict(ExecModel::Naive, 1, 1).unwrap();
        let naive_meas = naive_impl(&mut gpu, &region, &builder).unwrap();
        let err = (naive_pred.total.as_secs_f64() - naive_meas.total.as_secs_f64()).abs()
            / naive_meas.total.as_secs_f64();
        assert!(err < 0.05, "naive error {err:.3}");

        let pl_pred = model.predict(ExecModel::Pipelined, 4, 3).unwrap();
        let mut pl_region = region.clone();
        pl_region.spec.schedule = Schedule::static_(4, 3);
        let pl_meas = pipelined_impl(
            &mut gpu,
            &pl_region,
            &builder,
            &PipelinedOptions::default(),
            None,
        )
        .map(expect_done)
        .unwrap();
        let err = (pl_pred.total.as_secs_f64() - pl_meas.total.as_secs_f64()).abs()
            / pl_meas.total.as_secs_f64();
        assert!(err < 0.15, "pipelined error {err:.3}");

        let buf_pred = model.predict(ExecModel::PipelinedBuffer, 4, 3).unwrap();
        let buf_meas = buffer_impl(
            &mut gpu,
            &pl_region,
            &builder,
            &BufferOptions::default(),
            None,
        )
        .map(expect_done)
        .unwrap();
        let err = (buf_pred.total.as_secs_f64() - buf_meas.total.as_secs_f64()).abs()
            / buf_meas.total.as_secs_f64();
        assert!(err < 0.15, "buffer error {err:.3}");
    }

    #[test]
    fn mem_limit_shrinking_is_mirrored() {
        let (gpu, mut region) = setup(DeviceProfile::k40m());
        region.spec.mem_limit = Some(8 * SLICE as u64 * 4);
        let model = CostModel::new(&gpu, &region, &builder).unwrap();
        // A big request shrinks rather than failing; the prediction
        // reports the shrunken schedule.
        let p = model.predict(ExecModel::PipelinedBuffer, 32, 5).unwrap();
        assert!(
            p.chunk_size < 32 || p.num_streams < 5,
            "expected shrink, got {}x{}",
            p.chunk_size,
            p.num_streams
        );
    }

    #[test]
    fn calibration_moves_toward_measurement() {
        let mut calib = Calibration::default();
        let pred = Prediction {
            model: ExecModel::Naive,
            chunk_size: 1,
            num_streams: 1,
            total: SimTime::from_ms(10),
            h2d: SimTime::from_ms(4),
            d2h: SimTime::from_ms(2),
            kernel: SimTime::from_ms(4),
            host_api: SimTime::from_ms(1),
            bottleneck: Bottleneck::H2d,
        };
        let meas = crate::report::RunReport {
            model: ExecModel::Naive,
            total: SimTime::from_ms(13),
            h2d: SimTime::from_ms(8),    // 2× predicted
            d2h: SimTime::from_ms(2),    // exact
            kernel: SimTime::from_ms(2), // 0.5× predicted
            host_api: SimTime::from_ms(1),
            h2d_bytes: 0,
            d2h_bytes: 0,
            gpu_mem_bytes: 0,
            array_bytes: 0,
            chunks: 1,
            streams: 1,
            commands: 0,
            stalls: gpsim::StallReport::default(),
            stage_metrics: crate::metrics::StageMetrics::default(),
            counter_tracks: Vec::new(),
            recovery: crate::recovery::RecoveryStats::default(),
            spikes: 0,
            plan_reused: false,
        };
        calib.update(&pred, &meas);
        assert!(calib.h2d > 1.5);
        assert!((calib.d2h - 1.0).abs() < 1e-9);
        assert!(calib.kernel < 0.75);
        assert!((calib.host - 1.0).abs() < 1e-9);
    }

    #[test]
    fn online_loop_reuses_the_compiled_plan() {
        let (mut gpu, region) = setup(DeviceProfile::k40m());
        gpu.set_timeline_enabled(false);
        let report =
            run_model_online(&mut gpu, &region, &builder, &TuneSpace::default(), 4).unwrap();
        assert_eq!(report.steps.len(), 4);
        // Iterations that did not replan must have replayed the cache.
        for w in report.steps.windows(2) {
            if !w[0].replanned {
                assert!(w[1].plan_reused, "step {} recompiled", w[1].iter);
            }
        }
        assert!(report.total() > SimTime::ZERO);
    }
}

//! Region specifications: the typed equivalent of the paper's
//! `pipeline`, `pipeline_map` and `pipeline_mem_limit` clauses (Figure 1).
//!
//! A region is a loop `for k in lo..hi` plus a set of mapped arrays. Each
//! array declares, per iteration `k`, which *slices* of its split
//! dimension must be device-resident before the iteration's kernel runs —
//! as an affine window `[offset(k), offset(k) + window)`, exactly the
//! paper's `<var>[split_iter:size][0:m]` form (e.g. `A0[k-1:3]` →
//! `offset(k) = k − 1`, `window = 3`).


use crate::error::{RtError, RtResult};

/// An affine function of the loop variable: `eval(k) = scale·k + bias`.
///
/// This is the `split_iter` of the paper's `array_split_list`: the first
/// slice of the split dimension that iteration `k` depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Affine {
    /// Multiplier of the loop variable (must be ≥ 0).
    pub scale: i64,
    /// Constant offset.
    pub bias: i64,
}

impl Affine {
    /// The identity map `k ↦ k`.
    pub const IDENTITY: Affine = Affine { scale: 1, bias: 0 };

    /// `k ↦ k + bias`.
    pub const fn shifted(bias: i64) -> Affine {
        Affine { scale: 1, bias }
    }

    /// Evaluate at `k`.
    #[inline]
    pub fn eval(&self, k: i64) -> i64 {
        self.scale * k + self.bias
    }
}

/// Data transfer direction of a mapped array (the paper's `map_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapDir {
    /// Input: copied host→device before use (`to`).
    To,
    /// Output: copied device→host after production (`from`).
    From,
    /// Both (`tofrom`).
    ToFrom,
}

impl MapDir {
    /// True if the array is copied host→device.
    pub fn is_input(self) -> bool {
        matches!(self, MapDir::To | MapDir::ToFrom)
    }

    /// True if the array is copied device→host.
    pub fn is_output(self) -> bool {
        matches!(self, MapDir::From | MapDir::ToFrom)
    }
}

/// How an array is split into slices along its partition dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitSpec {
    /// Split along the outermost (slowest-varying) dimension of a
    /// contiguous array: slice `s` is the contiguous element range
    /// `[s·slice_elems, (s+1)·slice_elems)`.
    ///
    /// This covers `A0[k-1:3][0:ny][0:nx]`-style maps: `slice_elems`
    /// is the product of the non-split dimensions.
    OneD {
        /// First slice needed by iteration `k`.
        offset: Affine,
        /// Number of consecutive slices needed per iteration (the
        /// dependency window, the paper's `size`).
        window: usize,
        /// Total number of slices in the split dimension.
        extent: usize,
        /// Elements per slice.
        slice_elems: usize,
    },
    /// Split a row-major matrix into column blocks (non-contiguous): block
    /// `b` is columns `[b·block_cols, (b+1)·block_cols)` of all `rows`
    /// rows. Transfers use strided 2-D copies (`cudaMemcpy2DAsync`).
    ColBlocks {
        /// First block needed by iteration `k`.
        offset: Affine,
        /// Number of consecutive blocks needed per iteration.
        window: usize,
        /// Total number of blocks.
        extent: usize,
        /// Matrix rows.
        rows: usize,
        /// Columns per block.
        block_cols: usize,
        /// Full-matrix row stride in elements (≥ `extent·block_cols`).
        row_stride: usize,
    },
}

impl SplitSpec {
    /// The affine offset of the split.
    pub fn offset(&self) -> Affine {
        match self {
            SplitSpec::OneD { offset, .. } | SplitSpec::ColBlocks { offset, .. } => *offset,
        }
    }

    /// Dependency window (slices/blocks per iteration).
    pub fn window(&self) -> usize {
        match self {
            SplitSpec::OneD { window, .. } | SplitSpec::ColBlocks { window, .. } => *window,
        }
    }

    /// Total number of slices/blocks in the split dimension.
    pub fn extent(&self) -> usize {
        match self {
            SplitSpec::OneD { extent, .. } | SplitSpec::ColBlocks { extent, .. } => *extent,
        }
    }

    /// Elements per slice/block.
    pub fn slice_elems(&self) -> usize {
        match self {
            SplitSpec::OneD { slice_elems, .. } => *slice_elems,
            SplitSpec::ColBlocks {
                rows, block_cols, ..
            } => rows * block_cols,
        }
    }

    /// Total elements of the full host array.
    pub fn total_elems(&self) -> usize {
        match self {
            SplitSpec::OneD {
                extent,
                slice_elems,
                ..
            } => extent * slice_elems,
            SplitSpec::ColBlocks {
                rows, row_stride, ..
            } => rows * row_stride,
        }
    }

    /// The inclusive slice range `[first, last_end)` needed by iterations
    /// `[k0, k1)`.
    pub fn needed_slices(&self, k0: i64, k1: i64) -> (i64, i64) {
        let off = self.offset();
        let a = off.eval(k0);
        let b = off.eval(k1 - 1) + self.window() as i64;
        (a, b)
    }

    /// Validate internal consistency and that the loop range `[lo, hi)`
    /// never touches slices outside `[0, extent)`.
    pub fn validate(&self, name: &str, lo: i64, hi: i64) -> RtResult<()> {
        if self.window() == 0 {
            return Err(RtError::Spec(format!("map '{name}': window must be ≥ 1")));
        }
        if self.extent() == 0 || self.slice_elems() == 0 {
            return Err(RtError::Spec(format!(
                "map '{name}': extent and slice size must be non-zero"
            )));
        }
        if self.offset().scale < 0 {
            return Err(RtError::Spec(format!(
                "map '{name}': negative split_iter scale is not supported"
            )));
        }
        if let SplitSpec::ColBlocks {
            extent,
            block_cols,
            row_stride,
            ..
        } = self
        {
            if extent * block_cols > *row_stride {
                return Err(RtError::Spec(format!(
                    "map '{name}': {extent} blocks of {block_cols} columns exceed row stride {row_stride}"
                )));
            }
        }
        if hi <= lo {
            return Err(RtError::Spec(format!(
                "empty loop range [{lo}, {hi}) for map '{name}'"
            )));
        }
        let (a, b) = self.needed_slices(lo, hi);
        if a < 0 || b > self.extent() as i64 {
            return Err(RtError::Spec(format!(
                "map '{name}': iterations [{lo}, {hi}) touch slices [{a}, {b}) outside [0, {})",
                self.extent()
            )));
        }
        Ok(())
    }
}

/// One mapped array: the paper's `pipeline_map(map_type: var[...]...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSpec {
    /// Array name (diagnostics and directive binding).
    pub name: String,
    /// Transfer direction.
    pub dir: MapDir,
    /// Partitioning of the array.
    pub split: SplitSpec,
}

/// Sub-task schedule: the paper's `pipeline(schedule_kind[chunk, streams])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Fixed chunk size and stream count (the paper's prototype).
    Static {
        /// Loop iterations per chunk (the last chunk may be shorter).
        chunk_size: usize,
        /// Number of GPU streams to pipeline across.
        num_streams: usize,
    },
    /// Runtime-chosen chunk size and stream count from the device profile
    /// and memory limit (the paper's §VII future work, implemented here as
    /// an extension).
    Adaptive,
}

impl Schedule {
    /// A static schedule.
    pub fn static_(chunk_size: usize, num_streams: usize) -> Schedule {
        Schedule::Static {
            chunk_size,
            num_streams,
        }
    }
}

/// A full region specification (all clauses of Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Sub-task schedule.
    pub schedule: Schedule,
    /// Mapped arrays.
    pub maps: Vec<MapSpec>,
    /// Optional device-memory ceiling in bytes
    /// (`pipeline_mem_limit(mem_size)`).
    pub mem_limit: Option<u64>,
    /// Relative kernel-cost inflation of ring-buffer index translation
    /// (the paper attributes the Pipelined-buffer shortfall on kernels
    /// with heavy indexing, e.g. Lattice QCD, to these extra operations).
    pub index_overhead: f64,
}

impl RegionSpec {
    /// A region with the given schedule, no memory limit, and the default
    /// 3 % index-translation overhead.
    pub fn new(schedule: Schedule) -> RegionSpec {
        RegionSpec {
            schedule,
            maps: Vec::new(),
            mem_limit: None,
            index_overhead: 0.03,
        }
    }

    /// Add a mapped array (builder style).
    #[must_use]
    pub fn with_map(mut self, map: MapSpec) -> RegionSpec {
        self.maps.push(map);
        self
    }

    /// Set the memory limit in bytes (builder style).
    #[must_use]
    pub fn with_mem_limit(mut self, bytes: u64) -> RegionSpec {
        self.mem_limit = Some(bytes);
        self
    }

    /// Set the ring-index overhead fraction (builder style).
    #[must_use]
    pub fn with_index_overhead(mut self, frac: f64) -> RegionSpec {
        self.index_overhead = frac;
        self
    }

    /// Validate all maps against a loop range.
    pub fn validate(&self, lo: i64, hi: i64) -> RtResult<()> {
        if self.maps.is_empty() {
            return Err(RtError::Spec("region has no pipeline_map clauses".into()));
        }
        if let Schedule::Static {
            chunk_size,
            num_streams,
        } = self.schedule
        {
            if chunk_size == 0 {
                return Err(RtError::Spec("chunk_size must be ≥ 1".into()));
            }
            if num_streams == 0 {
                return Err(RtError::Spec("num_streams must be ≥ 1".into()));
            }
        }
        for m in &self.maps {
            m.split.validate(&m.name, lo, hi)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil_input(extent: usize) -> SplitSpec {
        SplitSpec::OneD {
            offset: Affine::shifted(-1),
            window: 3,
            extent,
            slice_elems: 64,
        }
    }

    #[test]
    fn affine_eval() {
        assert_eq!(Affine::IDENTITY.eval(7), 7);
        assert_eq!(Affine::shifted(-1).eval(7), 6);
        assert_eq!(Affine { scale: 2, bias: 3 }.eval(5), 13);
    }

    #[test]
    fn needed_slices_match_paper_example() {
        // A0[k-1:3]: before iteration k=t, slices t-1, t, t+1 must be on
        // the device (paper Section III).
        let s = stencil_input(10);
        assert_eq!(s.needed_slices(5, 6), (4, 7));
        // A chunk of two iterations [5, 7) needs slices [4, 8).
        assert_eq!(s.needed_slices(5, 7), (4, 8));
    }

    #[test]
    fn validate_accepts_interior_loop() {
        let s = stencil_input(10);
        assert!(s.validate("A0", 1, 9).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_bounds_window() {
        let s = stencil_input(10);
        // k=0 needs slice -1.
        let err = s.validate("A0", 0, 9).unwrap_err();
        assert!(err.to_string().contains("outside"));
        // k=9 needs slice 10.
        assert!(s.validate("A0", 1, 10).is_err());
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut s = stencil_input(10);
        if let SplitSpec::OneD { window, .. } = &mut s {
            *window = 0;
        }
        assert!(s.validate("A0", 1, 9).is_err());

        let s = SplitSpec::ColBlocks {
            offset: Affine::IDENTITY,
            window: 1,
            extent: 8,
            rows: 4,
            block_cols: 4,
            row_stride: 16, // 8 * 4 = 32 > 16
        };
        assert!(s.validate("B", 0, 8).is_err());
    }

    #[test]
    fn col_blocks_sizes() {
        let s = SplitSpec::ColBlocks {
            offset: Affine::IDENTITY,
            window: 1,
            extent: 8,
            rows: 16,
            block_cols: 4,
            row_stride: 32,
        };
        assert_eq!(s.slice_elems(), 64);
        assert_eq!(s.total_elems(), 512);
    }

    #[test]
    fn region_validation() {
        let spec = RegionSpec::new(Schedule::static_(1, 3));
        assert!(spec.validate(1, 9).is_err(), "no maps");

        let spec = RegionSpec::new(Schedule::static_(0, 3)).with_map(MapSpec {
            name: "A0".into(),
            dir: MapDir::To,
            split: stencil_input(10),
        });
        assert!(spec.validate(1, 9).is_err(), "zero chunk");

        let spec = RegionSpec::new(Schedule::static_(1, 3)).with_map(MapSpec {
            name: "A0".into(),
            dir: MapDir::To,
            split: stencil_input(10),
        });
        assert!(spec.validate(1, 9).is_ok());
        assert!(spec.validate(9, 9).is_err(), "empty range");
    }

    #[test]
    fn map_dir_predicates() {
        assert!(MapDir::To.is_input() && !MapDir::To.is_output());
        assert!(!MapDir::From.is_input() && MapDir::From.is_output());
        assert!(MapDir::ToFrom.is_input() && MapDir::ToFrom.is_output());
    }
}

//! The unified run front door: one entry point over every execution
//! model, with retry and graceful degradation.
//!
//! [`run_model`] is the single entry point over the per-model drivers:
//! pick a model (or [`ExecModel::Auto`]), hand over a [`RunOptions`],
//! and the runtime handles scheduling, fault recovery and fallback:
//!
//! * **Chunk-granular retry** — with a [`RetryPolicy`] enabled, a failed
//!   chunk's H2D → kernel → D2H triplet is re-enqueued (exponential
//!   backoff in simulated time) while independent in-flight chunks keep
//!   streaming.
//! * **Degradation ladder** — when retries run dry, or a memory limit
//!   turns out infeasible, the runtime falls back
//!   `PipelinedBuffer → Pipelined → Naive`, re-executing only the
//!   unfinished iteration ranges and recording the decision in
//!   [`RunReport::recovery`](crate::RunReport).
//!
//! The default [`RunOptions`] disables recovery entirely; the drivers
//! then take exactly the code path the per-model functions always took.

use gpsim::{Gpu, SimError};

use crate::autotune::{autotune, TuneSpace};
use crate::buffer::{buffer_fn_impl, buffer_impl_with, BufferOptions};
use crate::error::{RtError, RtResult};
use crate::exec::{naive_impl, pipelined_impl, KernelBuilder, PipelinedOptions, Region};
use crate::multi::MultiOptions;
use crate::plan::WindowFn;
use crate::recovery::{
    Degradation, DriverOutcome, RecoveryCtx, RecoveryStats, RetryPolicy, ToFromSnapshot,
};
use crate::report::{ExecModel, RunReport};
use crate::spec::Schedule;

/// Everything the unified front door can be told about a run.
///
/// `RunOptions::default()` reproduces the historical behavior exactly:
/// no retry, no degradation, default driver tuning.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Fault-recovery policy (disabled by default).
    pub retry: RetryPolicy,
    /// Fall down the model ladder (`PipelinedBuffer → Pipelined →
    /// Naive`) when retries are exhausted or a memory limit is
    /// infeasible, instead of failing the run.
    pub degrade: bool,
    /// Tuning knobs of the Pipelined driver.
    pub pipelined: PipelinedOptions,
    /// Ablation switches of the Pipelined-buffer driver.
    pub buffer: BufferOptions,
    /// Candidate grid for [`ExecModel::Auto`].
    pub tune: TuneSpace,
    /// A pre-compiled plan to replay instead of planning from scratch
    /// (the host-runtime fast path). The driver verifies the plan still
    /// matches the region/device before reusing it — a stale plan falls
    /// back to a fresh compile, never to wrong execution. `Arc` so one
    /// compile can be shared across sweep trials and iterations.
    pub compiled: Option<std::sync::Arc<crate::plan::CompiledPlan>>,
    /// Supervision knobs of the multi-device co-scheduler
    /// ([`run_model_multi`](crate::run_model_multi)); ignored by the
    /// single-device entry points.
    pub multi: MultiOptions,
}

impl RunOptions {
    /// The default options (recovery off).
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Set the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> RunOptions {
        self.retry = retry;
        self
    }

    /// Enable or disable the degradation ladder.
    #[must_use]
    pub fn with_degrade(mut self, degrade: bool) -> RunOptions {
        self.degrade = degrade;
        self
    }

    /// Set the Pipelined driver options.
    #[must_use]
    pub fn with_pipelined(mut self, opts: PipelinedOptions) -> RunOptions {
        self.pipelined = opts;
        self
    }

    /// Set the Pipelined-buffer driver options.
    #[must_use]
    pub fn with_buffer(mut self, opts: BufferOptions) -> RunOptions {
        self.buffer = opts;
        self
    }

    /// Set the autotuning grid used by [`ExecModel::Auto`].
    #[must_use]
    pub fn with_tune(mut self, tune: TuneSpace) -> RunOptions {
        self.tune = tune;
        self
    }

    /// Replay a pre-compiled plan (see
    /// [`compile_plan`](crate::compile_plan)) instead of planning anew.
    #[must_use]
    pub fn with_compiled(mut self, plan: std::sync::Arc<crate::plan::CompiledPlan>) -> RunOptions {
        self.compiled = Some(plan);
        self
    }

    /// Set the multi-device co-scheduling options.
    #[must_use]
    pub fn with_multi(mut self, multi: MultiOptions) -> RunOptions {
        self.multi = multi;
        self
    }
}

/// Run a region under the given execution model — the single entry point
/// behind [`Pipeline::run`](crate::Pipeline::run).
///
/// [`ExecModel::Auto`] tunes a schedule on a timing-mode twin first (see
/// [`crate::autotune`]) and then runs the buffered model with the winner.
pub fn run_model(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    model: ExecModel,
    opts: &RunOptions,
) -> RtResult<RunReport> {
    match model {
        ExecModel::Auto => {
            let tuned = autotune(gpu, region, builder, &opts.tune)?;
            let mut best = region.clone();
            best.spec.schedule = tuned.best;
            run_ladder(gpu, &best, builder, ExecModel::PipelinedBuffer, opts, false)
        }
        m => run_ladder(gpu, region, builder, m, opts, false),
    }
}

/// Run a region whose dependency windows come from explicit functions
/// (the paper's §VII function-based extension) through the unified front
/// door. Supports retry (chunk-granular and whole-run) but not the
/// degradation ladder: the simpler models cannot honour custom windows.
pub fn run_window_fn(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    windows: &[Option<&WindowFn<'_>>],
    opts: &RunOptions,
) -> RtResult<RunReport> {
    let snapshot = if opts.retry.enabled() {
        ToFromSnapshot::take(gpu, region)?
    } else {
        ToFromSnapshot::empty(region)
    };
    let mut extra = RecoveryStats::default();
    let mut whole_attempts = 0u32;
    loop {
        let rctx = RecoveryCtx {
            policy: &opts.retry,
            snapshot: &snapshot,
        };
        let recovery = opts.retry.enabled().then_some(&rctx);
        match buffer_fn_impl(gpu, region, builder, windows, recovery) {
            Ok(DriverOutcome::Done(mut report)) => {
                report.recovery.merge(&extra);
                return Ok(report);
            }
            Ok(DriverOutcome::Exhausted {
                report,
                chunk,
                stage,
                attempts,
                source,
                ..
            }) => {
                return Err(RtError::RetriesExhausted {
                    model: report.model,
                    chunk,
                    stage,
                    attempts,
                    source,
                });
            }
            Err(e) => {
                whole_run_retry(gpu, region, &snapshot, opts, &mut extra, &mut whole_attempts, e)?;
            }
        }
    }
}

/// Handle a driver-level error by whole-run retry when it is a retryable
/// injected fault (setup-phase alloc faults, Naive-model faults) and the
/// budget allows; otherwise propagate it. On `Ok(())` the caller loops.
fn whole_run_retry(
    gpu: &mut Gpu,
    region: &Region,
    snapshot: &ToFromSnapshot,
    opts: &RunOptions,
    extra: &mut RecoveryStats,
    whole_attempts: &mut u32,
    e: RtError,
) -> RtResult<()> {
    let (stage, retryable) = match &e {
        RtError::Sim(s @ SimError::Injected { stage, .. }) => {
            (*stage, opts.retry.retryable(*stage, s))
        }
        _ => return Err(e),
    };
    if !retryable || *whole_attempts >= opts.retry.max_attempts {
        return Err(e);
    }
    *whole_attempts += 1;
    extra.retries[stage.index()] += 1;
    let t0 = gpu.now();
    gpu.host_busy(opts.retry.backoff_for(*whole_attempts));
    extra.backoff_time += gpu.now() - t0;
    snapshot.restore_all(gpu, region)?;
    Ok(())
}

/// Run one concrete model with recovery, descending the degradation
/// ladder as needed. `as_fallback` marks recursive invocations over
/// unfinished sub-ranges (it changes how the Naive rung executes — see
/// below).
pub(crate) fn run_ladder(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    mut model: ExecModel,
    opts: &RunOptions,
    as_fallback: bool,
) -> RtResult<RunReport> {
    let snapshot = if opts.retry.enabled() {
        ToFromSnapshot::take(gpu, region)?
    } else {
        ToFromSnapshot::empty(region)
    };
    let mut extra = RecoveryStats::default();
    let mut whole_attempts = 0u32;
    loop {
        let rctx = RecoveryCtx {
            policy: &opts.retry,
            snapshot: &snapshot,
        };
        match run_driver(gpu, region, builder, model, opts, &rctx, as_fallback) {
            Ok(DriverOutcome::Done(mut report)) => {
                report.recovery.merge(&extra);
                return Ok(report);
            }
            Ok(DriverOutcome::Exhausted {
                mut report,
                chunk,
                stage,
                attempts,
                source,
                unfinished,
            }) => {
                let from = report.model;
                let to = match from {
                    ExecModel::PipelinedBuffer => ExecModel::Pipelined,
                    ExecModel::Pipelined => ExecModel::Naive,
                    // The Naive rung retries at whole-run granularity, so
                    // chunk exhaustion cannot reach here; treat it as the
                    // bottom of the ladder.
                    _ => {
                        return Err(RtError::RetriesExhausted {
                            model: from,
                            chunk,
                            stage,
                            attempts,
                            source,
                        })
                    }
                };
                if !opts.degrade {
                    return Err(RtError::RetriesExhausted {
                        model: from,
                        chunk,
                        stage,
                        attempts,
                        source,
                    });
                }
                report.recovery.merge(&extra);
                let reason = format!(
                    "retries exhausted on chunk {chunk} ({stage} stage) after {attempts} attempts: {source}"
                );
                // The unfinished windows' ToFrom host data may hold stale
                // drains from failed attempts; reset them before the
                // fallback re-reads them.
                for &(k0, k1) in &unfinished {
                    snapshot.restore_window(gpu, region, k0, k1)?;
                }
                for (k0, k1) in coalesce(&unfinished) {
                    report.recovery.degradations.push(Degradation {
                        from,
                        to,
                        iterations: (k0, k1),
                        reason: reason.clone(),
                    });
                    let mut sub = region.clone();
                    sub.lo = k0;
                    sub.hi = k1;
                    let fb = run_ladder(gpu, &sub, builder, to, opts, true).map_err(|e| {
                        RtError::Degraded {
                            from,
                            to,
                            reason: format!("{reason}; fallback failed: {e}"),
                        }
                    })?;
                    absorb(&mut report, &fb);
                }
                return Ok(report);
            }
            Err(RtError::MemLimitInfeasible { limit, needed })
                if opts.degrade && model == ExecModel::PipelinedBuffer =>
            {
                // The buffered model cannot fit even its smallest
                // schedule under the memory limit: take the ladder down
                // one rung over the whole range and note why.
                extra.degradations.push(Degradation {
                    from: ExecModel::PipelinedBuffer,
                    to: ExecModel::Pipelined,
                    iterations: (region.lo, region.hi),
                    reason: format!(
                        "pipeline_mem_limit({limit} B) infeasible: minimum footprint {needed} B"
                    ),
                });
                model = ExecModel::Pipelined;
            }
            Err(e) => {
                whole_run_retry(gpu, region, &snapshot, opts, &mut extra, &mut whole_attempts, e)?;
            }
        }
    }
}

/// Dispatch one driver invocation.
fn run_driver(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    model: ExecModel,
    opts: &RunOptions,
    rctx: &RecoveryCtx<'_>,
    as_fallback: bool,
) -> RtResult<DriverOutcome> {
    let recovery = opts.retry.enabled().then_some(rctx);
    match model {
        ExecModel::Naive if as_fallback => {
            // Naive-rung fallback over a sub-range: a true naive run
            // drains *full* arrays device→host, which would overwrite
            // host output ranges that completed chunks already produced.
            // Run the sub-range as one chunk on one stream instead —
            // naive semantics (zero overlap), window-granular transfers —
            // and label it Naive.
            let mut sub = region.clone();
            let iters = (region.hi - region.lo).max(1) as usize;
            sub.spec.schedule = Schedule::static_(iters, 1);
            match pipelined_impl(gpu, &sub, builder, &opts.pipelined, recovery)? {
                DriverOutcome::Done(mut r) => {
                    r.model = ExecModel::Naive;
                    Ok(DriverOutcome::Done(r))
                }
                DriverOutcome::Exhausted {
                    mut report,
                    chunk,
                    stage,
                    attempts,
                    source,
                    unfinished,
                } => {
                    report.model = ExecModel::Naive;
                    Ok(DriverOutcome::Exhausted {
                        report,
                        chunk,
                        stage,
                        attempts,
                        source,
                        unfinished,
                    })
                }
            }
        }
        ExecModel::Naive => naive_impl(gpu, region, builder).map(DriverOutcome::Done),
        ExecModel::Pipelined => pipelined_impl(gpu, region, builder, &opts.pipelined, recovery),
        ExecModel::PipelinedBuffer => buffer_impl_with(
            gpu,
            region,
            builder,
            &opts.buffer,
            recovery,
            opts.compiled.as_deref(),
        ),
        ExecModel::Auto => unreachable!("Auto is resolved by run_model"),
    }
}

/// Merge adjacent unfinished chunk ranges so the fallback runs once per
/// contiguous stretch.
fn coalesce(ranges: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut out: Vec<(i64, i64)> = Vec::new();
    for &(a, b) in ranges {
        match out.last_mut() {
            Some(last) if last.1 == a => last.1 = b,
            _ => out.push((a, b)),
        }
    }
    out
}

/// Fold a fallback run's accounting into the primary (degraded) report:
/// the fallback ran sequentially after the primary, so times and byte
/// counts add.
fn absorb(primary: &mut RunReport, fb: &RunReport) {
    primary.total += fb.total;
    primary.h2d += fb.h2d;
    primary.d2h += fb.d2h;
    primary.kernel += fb.kernel;
    primary.host_api += fb.host_api;
    primary.h2d_bytes += fb.h2d_bytes;
    primary.d2h_bytes += fb.d2h_bytes;
    primary.gpu_mem_bytes = primary.gpu_mem_bytes.max(fb.gpu_mem_bytes);
    primary.array_bytes = primary.array_bytes.max(fb.array_bytes);
    primary.commands += fb.commands;
    primary.spikes += fb.spikes;
    primary.recovery.merge(&fb.recovery);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_adjacent() {
        assert_eq!(coalesce(&[(0, 4), (4, 8), (12, 16)]), vec![(0, 8), (12, 16)]);
        assert_eq!(coalesce(&[]), Vec::<(i64, i64)>::new());
        assert_eq!(coalesce(&[(3, 5)]), vec![(3, 5)]);
    }
}

//! # pipeline-rt — directive-based partitioning & pipelining runtime
//!
//! Rust reproduction of the runtime proposed in *Directive-Based
//! Partitioning and Pipelining for Graphics Processing Units*
//! (Cui, Scogland, de Supinski, Feng — IEEE IPDPS 2017), running against
//! the [`gpsim`] simulated GPU.
//!
//! The paper extends OpenMP/OpenACC with three clauses:
//!
//! ```text
//! #pragma omp target \
//!     pipeline(schedule_kind[chunk_size, num_stream]) \
//!     pipeline_map(map_type : var[split_iter:size][0:m]...) \
//!     pipeline_mem_limit(mem_size)
//! ```
//!
//! This crate is the typed equivalent:
//!
//! * [`RegionSpec`] / [`MapSpec`] / [`SplitSpec`] / [`Schedule`] describe
//!   the clauses (the `pipeline-directive` crate parses the textual
//!   syntax into these types).
//! * [`Region`] binds a spec to host arrays and a loop range.
//! * One front door, [`run_model`] (or the [`Pipeline`] builder),
//!   executes a bound region under any [`ExecModel`], mirroring the
//!   paper's evaluation matrix:
//!   [`ExecModel::Naive`] (synchronous offload),
//!   [`ExecModel::Pipelined`] (hand-style chunked overlap with full-size
//!   device arrays) and [`ExecModel::PipelinedBuffer`] (the
//!   contribution: overlap **plus** a small mod-indexed device ring
//!   buffer); [`ExecModel::Auto`] autotunes the schedule first.
//!   [`RunOptions`] carries the [`RetryPolicy`] and degradation-ladder
//!   switches for fault-tolerant runs.
//! * [`RunReport`] captures time, phase breakdown, and device memory —
//!   the quantities plotted in the paper's Figures 3–10.
//!
//! ## Example: a 1-D moving-average pipeline
//!
//! ```
//! use gpsim::{DeviceProfile, ExecMode, Gpu, KernelCost, KernelLaunch};
//! use pipeline_rt::{
//!     Affine, ExecModel, MapDir, MapSpec, Region, RegionSpec, RunOptions,
//!     Schedule, SplitSpec, run_model,
//! };
//!
//! let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
//! let (nz, slice) = (64usize, 256usize);
//! let input = gpu.alloc_host(nz * slice, true).unwrap();
//! let output = gpu.alloc_host(nz * slice, true).unwrap();
//! gpu.host_fill(input, |i| i as f32).unwrap();
//!
//! let spec = RegionSpec::new(Schedule::static_(4, 3))
//!     .with_map(MapSpec {
//!         name: "in".into(),
//!         dir: MapDir::To,
//!         split: SplitSpec::OneD {
//!             offset: Affine::shifted(-1), window: 3, extent: nz, slice_elems: slice,
//!         },
//!     })
//!     .with_map(MapSpec {
//!         name: "out".into(),
//!         dir: MapDir::From,
//!         split: SplitSpec::OneD {
//!             offset: Affine::IDENTITY, window: 1, extent: nz, slice_elems: slice,
//!         },
//!     });
//! let region = Region::new(spec, 1, (nz - 1) as i64, vec![input, output]);
//!
//! let report = run_model(&mut gpu, &region, &|ctx| {
//!     let (k0, k1) = (ctx.k0, ctx.k1);
//!     let (vin, vout) = (ctx.view(0), ctx.view(1));
//!     KernelLaunch::new(
//!         "avg3",
//!         KernelCost { flops: (k1 - k0) as u64 * slice as u64 * 3, bytes: 0 },
//!         move |kc| {
//!             for k in k0..k1 {
//!                 let up = kc.read(vin.slice_ptr(k - 1), slice)?;
//!                 let mid = kc.read(vin.slice_ptr(k), slice)?;
//!                 let dn = kc.read(vin.slice_ptr(k + 1), slice)?;
//!                 let mut out = kc.write(vout.slice_ptr(k), slice)?;
//!                 for i in 0..slice {
//!                     out[i] = (up[i] + mid[i] + dn[i]) / 3.0;
//!                 }
//!             }
//!             Ok(())
//!         },
//!     )
//! }, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
//! assert!(report.gpu_mem_bytes > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
mod autotune;
mod buffer;
mod calibrate;
mod costmodel;
mod error;
mod exec;
mod metrics;
mod multi;
mod plan;
mod recovery;
mod report;
mod resume;
mod run;
mod spec;
pub mod sweep;
mod trace;
mod view;

pub use api::{ModelReports, Pipeline};
pub use calibrate::{
    calibrate_from_trace, calibrate_with_fit, fit_profile, CalibrationReport, DirFit, ProfileFit,
};
pub use autotune::{autotune, autotune_with, run_autotuned, Trial, TuneResult, TuneSpace, TuneStrategy};
pub use buffer::{compile_plan, BufferOptions, StreamAssignment};
pub use costmodel::{
    run_model_online, Bottleneck, Calibration, CostModel, ModelTuner, OnlineReport, OnlineStep,
    Prediction,
};
pub use error::{RtError, RtResult};
pub use metrics::{Histogram, Stage, StageMetrics};
pub use exec::{KernelBuilder, PipelinedOptions, Region};
pub use multi::{
    partition_iterations, run_model_multi, DeviceTrace, Migration, MigrationCause, MultiOptions,
    MultiRecovery, MultiReport,
};
pub use plan::{
    build_window_table, chunk_ranges, footprint, map_buffer_bytes, map_full_bytes, min_footprint,
    resolve_plan, resolve_plan_fn, ring_slots_default, ring_slots_min, ChunkStep, CompiledPlan,
    EvKind, Plan, WindowFn, WindowTable,
};
pub use recovery::{Degradation, RecoveryStats, RetryPolicy};
pub use report::{ExecModel, RunReport};
pub use resume::{JobReport, ResumableRun};
pub use run::{run_model, run_window_fn, RunOptions};
pub use spec::{Affine, MapDir, MapSpec, RegionSpec, Schedule, SplitSpec};
pub use trace::{
    diff_traces, render_diff, CopySample, ImportedTrace, SpanDelta, TraceAnalysis, TraceDiff,
};
pub use sweep::{sweep_map, sweep_map_threads, sweep_map_with, sweep_threads};
pub use view::{ArrayView, ChunkCtx};

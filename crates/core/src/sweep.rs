//! Parallel sweep engine: fan independent simulation trials over OS
//! threads.
//!
//! Everything this workspace measures — figure grids, autotuning, cost
//! probes — is a list of *independent* simulations: each trial builds
//! its own [`Gpu`](gpsim::Gpu) context, runs a region, and returns plain
//! data. The contexts are deliberately `!Send` (host pools are
//! `Rc<RefCell<..>>`), so parallelism happens at the *trial* granularity:
//! the worker closure receives a trial index, constructs every context
//! it needs inside the worker thread, and only the `Send` result crosses
//! back.
//!
//! Determinism: results are scattered into their slot by trial index, so
//! the output of [`sweep_map`] is byte-for-byte the same as the serial
//! loop `(0..n).map(f).collect()` regardless of thread count or
//! scheduling (each trial is a closed simulation with its own clock —
//! nothing about a trial depends on which worker ran it or when).
//!
//! Thread count comes from [`sweep_threads`]: the `DBPP_SWEEP_THREADS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`]. `DBPP_SWEEP_THREADS=1`
//! forces the serial path (no threads are spawned at all).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker-pool size used by [`sweep_map`]: `DBPP_SWEEP_THREADS` if set
/// to a positive integer, else the machine's available parallelism
/// (falling back to 1 if that is unavailable).
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("DBPP_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f(0), f(1), …, f(n-1)` across [`sweep_threads`] workers and
/// return the results in index order.
///
/// Equivalent to `(0..n).map(f).collect()` — including panic behaviour
/// (a panicking trial propagates after all workers join) — but
/// wall-clock scales with the thread count. See the module docs for the
/// determinism argument.
pub fn sweep_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sweep_map_threads(sweep_threads(), n, f)
}

/// [`sweep_map`] with an explicit worker count (used by the perf harness
/// to compare serial vs parallel on the same workload; `threads == 1`
/// runs inline without spawning).
pub fn sweep_map_threads<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Dynamic (work-stealing-ish) assignment: uneven trial
                // costs — a qcd-large cell next to a qcd-small one —
                // self-balance instead of idling a statically-partitioned
                // worker.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                slots.lock().expect("sweep result lock")[i] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep result lock")
        .into_iter()
        .map(|slot| slot.expect("every trial index visited"))
        .collect()
}

/// [`sweep_map`] with **per-worker reusable state**: each worker thread
/// lazily builds one `S` via `init` on its first trial and passes it by
/// mutable reference to every trial it runs.
///
/// This is how a sweep amortizes expensive non-`Send` setup — a
/// simulated [`Gpu`](gpsim::Gpu) context plus its pinned host arrays —
/// across trials instead of rebuilding it per trial: the state never
/// crosses threads (it is created and dropped inside the worker), so
/// `S` needs neither `Send` nor `Sync`. Trials must leave the state
/// *quiesced* (device synchronized, everything freed) so results stay
/// independent of which worker ran them; determinism then follows from
/// the same argument as [`sweep_map`].
pub fn sweep_map_with<S, T, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = sweep_threads().clamp(1, n.max(1));
    if threads <= 1 {
        let mut state = None;
        return (0..n)
            .map(|i| f(state.get_or_insert_with(&init), i))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Built on first trial: a worker that never wins a trial
                // (more workers than trials) never pays for the state.
                let mut state: Option<S> = None;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(state.get_or_insert_with(&init), i);
                    slots.lock().expect("sweep result lock")[i] = Some(value);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep result lock")
        .into_iter()
        .map(|slot| slot.expect("every trial index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let out = sweep_map_threads(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        assert_eq!(
            sweep_map_threads(1, 33, f),
            sweep_map_threads(8, 33, f),
        );
    }

    #[test]
    fn empty_and_single_trial() {
        assert_eq!(sweep_map_threads(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(sweep_map_threads(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        assert_eq!(sweep_map_threads(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn workers_can_build_their_own_gpu_contexts() {
        use gpsim::{DeviceProfile, ExecMode, Gpu};
        // The whole point: Gpu is !Send, so each trial builds its own
        // context inside the worker and returns plain data.
        let times = sweep_map_threads(4, 8, |i| {
            let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
            let h = gpu.alloc_host(1 << 12, true).unwrap();
            let d = gpu.alloc(1 << 12).unwrap();
            let s = gpu.create_stream().unwrap();
            for _ in 0..=i {
                gpu.memcpy_h2d_async(s, h, 0, d, 1 << 12).unwrap();
            }
            gpu.synchronize().unwrap();
            gpu.now().as_ns()
        });
        // More copies take longer; each context has its own clock.
        for w in times.windows(2) {
            assert!(w[0] < w[1], "{times:?}");
        }
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn sweep_map_with_builds_at_most_one_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = sweep_map_with(
            16,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u32
            },
            |st, i| {
                *st += 1;
                i
            },
        );
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        let built = inits.load(Ordering::Relaxed);
        assert!(built >= 1);
        assert!(built <= sweep_threads().clamp(1, 16), "built {built} states");
    }

    #[test]
    fn sweep_map_with_matches_plain_map() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let out = sweep_map_with(33, || (), |(), i| f(i));
        assert_eq!(out, (0..33).map(f).collect::<Vec<_>>());
    }
}

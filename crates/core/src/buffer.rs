//! The **Pipelined-buffer** driver — the paper's contribution.
//!
//! Each mapped array gets a small pre-allocated device ring buffer of
//! `slots` slices; slice `s` of the host array lives at ring slot
//! `s % slots` ("we copy chunk *i* to position (*i* % 4)", paper §IV).
//! The loop is divided into chunks dispatched round-robin over streams;
//! per chunk the runtime:
//!
//! 1. copies the chunk's not-yet-resident input slices into their ring
//!    slots (waiting, via events, for any still-running kernels that read
//!    the slices being evicted — the write-after-read hazard of ring
//!    reuse),
//! 2. launches the kernel (waiting for H2D groups of *other* streams that
//!    copied slices this chunk reuses, e.g. stencil halos — the
//!    read-after-write hazard),
//! 3. copies the chunk's output slices back to the host and records their
//!    completion (so a later chunk reusing the slot can wait — the
//!    write-after-write/D2H hazard).
//!
//! Residency tracking means shared halo slices are copied exactly once,
//! like the paper's dependency calculation that "removes the data that
//! only previous chunks require".
//!
//! Execution is split into **compile** and **replay**: [`compile_plan`]
//! resolves the schedule, classifies every residency/hazard decision into
//! per-chunk [`ChunkStep`]s and interns the trace label — all without
//! touching the device — and the driver replays the resulting
//! [`CompiledPlan`], issuing only device commands. Iterative callers
//! (sweeps, autotune probes, multi-iteration apps) compile once and pass
//! the plan back in via
//! [`RunOptions::with_compiled`](crate::RunOptions::with_compiled),
//! taking per-run planning out of the host hot path.

use gpsim::{Copy2D, CounterTrack, EventId, Gpu, HostSpanKind, StreamId, WaitCause};

use crate::error::RtResult;
use crate::exec::{declare_accesses, KernelBuilder, Region};
use crate::plan::{
    build_window_table, resolve_plan, resolve_plan_fn, ChunkStep, CompiledPlan, EvKind, Plan,
    PlanKey, WindowFn, WindowTable,
};
use crate::recovery::{drain_with_recovery, DrainResult, DriverOutcome, RecoveryCtx, RecoveryStats};
use crate::report::{ExecModel, RunReport};
use crate::spec::{RegionSpec, SplitSpec};
use crate::view::{ArrayView, ChunkCtx};

/// Ring bookkeeping for one mapped array.
///
/// All metadata is keyed by ring slot, not by slice: an entry is only
/// meaningful while its slice is mapped (`mapped[slot] == Some(sl)`),
/// and eviction clears the slot's entries — so per-slot arrays give the
/// same semantics as slice-keyed maps without hashing on the classify
/// hot path (the reader vectors keep their capacity across reuse).
struct RingBook {
    slots: usize,
    /// slot → currently mapped slice.
    mapped: Vec<Option<i64>>,
    /// slot → chunk that copied the mapped slice in (inputs).
    copied_by: Vec<Option<usize>>,
    /// slot → chunks whose kernels read the mapped slice (inputs).
    readers: Vec<Vec<usize>>,
    /// slot → chunk that produced and drained the mapped slice (outputs).
    written_by: Vec<Option<usize>>,
}

impl RingBook {
    fn new(slots: usize) -> Self {
        RingBook {
            slots,
            mapped: vec![None; slots],
            copied_by: vec![None; slots],
            readers: vec![Vec::new(); slots],
            written_by: vec![None; slots],
        }
    }

    /// Ring slot of a slice.
    fn slot(&self, sl: i64) -> usize {
        sl.rem_euclid(self.slots as i64) as usize
    }

    /// The chunk that copied slice `sl` in, if `sl` is still resident.
    fn resident_copier(&self, sl: i64) -> Option<usize> {
        let slot = self.slot(sl);
        if self.mapped[slot] == Some(sl) {
            self.copied_by[slot]
        } else {
            None
        }
    }
}

/// Split the slice range `[lo, hi)` into ring-contiguous runs: a run ends
/// when the ring wraps (slot returns to 0), so each run is one contiguous
/// device range.
fn slot_runs_into(lo: i64, hi: i64, slots: usize, out: &mut Vec<(i64, usize)>) {
    let mut s = lo;
    while s < hi {
        let to_wrap = slots as i64 - s.rem_euclid(slots as i64);
        let end = (s + to_wrap).min(hi);
        out.push((s, (end - s) as usize));
        s = end;
    }
}

/// [`slot_runs_into`] returning a fresh vector (tests and cold paths).
fn slot_runs(lo: i64, hi: i64, slots: usize) -> Vec<(i64, usize)> {
    let mut out = Vec::new();
    slot_runs_into(lo, hi, slots, &mut out);
    out
}

/// Push a compiled wait, deduplicating on the `(chunk, stage)` pair —
/// exactly one event exists per chunk per stage, so this matches the
/// historical event-id dedupe.
fn push_wait(waits: &mut Vec<(usize, EvKind)>, ch: usize, kind: EvKind) {
    if !waits.contains(&(ch, kind)) {
        waits.push((ch, kind));
    }
}

/// [`push_wait`] for cause-tagged waits: dedupe on the `(chunk, stage)`
/// pair (the first cause recorded wins).
fn push_wait_cause(
    waits: &mut Vec<(usize, EvKind, WaitCause)>,
    ch: usize,
    kind: EvKind,
    cause: WaitCause,
) {
    if !waits.iter().any(|&(w, k, _)| w == ch && k == kind) {
        waits.push((ch, kind, cause));
    }
}

/// How chunks are assigned to streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamAssignment {
    /// Chunk `c` goes to stream `c % num_streams` (the paper's
    /// prototype).
    #[default]
    RoundRobin,
    /// Each chunk goes to the stream with the least estimated enqueued
    /// work (transfer + roofline kernel time). Helps when chunk costs
    /// vary — uneven tails, custom dependency windows.
    LeastLoaded,
}

/// Ablation switches for the Pipelined-buffer driver (used by the
/// `ablations` bench to quantify each design choice; defaults reproduce
/// the paper's prototype).
#[derive(Debug, Clone, Copy)]
pub struct BufferOptions {
    /// Track slice residency and skip re-copies of halo slices already on
    /// the device. Off = every chunk copies its full window.
    pub track_residency: bool,
    /// Size each ring to the single-chunk minimum instead of covering all
    /// in-flight chunks: lower memory, but write-after-read stalls
    /// serialize the pipeline.
    pub minimal_slots: bool,
    /// Chunk-to-stream policy.
    pub assignment: StreamAssignment,
}

impl BufferOptions {
    /// Defaults, identical to [`Default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable residency tracking (consuming builder).
    pub fn with_track_residency(mut self, on: bool) -> Self {
        self.track_residency = on;
        self
    }

    /// Enable or disable minimal ring slots (consuming builder).
    pub fn with_minimal_slots(mut self, on: bool) -> Self {
        self.minimal_slots = on;
        self
    }

    /// Set the chunk-to-stream policy (consuming builder).
    pub fn with_assignment(mut self, assignment: StreamAssignment) -> Self {
        self.assignment = assignment;
        self
    }
}

impl Default for BufferOptions {
    fn default() -> Self {
        BufferOptions {
            track_residency: true,
            minimal_slots: false,
            assignment: StreamAssignment::RoundRobin,
        }
    }
}

/// Estimate one chunk's device occupancy for the least-loaded policy:
/// input-window and output transfer times plus the roofline kernel time.
#[allow(clippy::too_many_arguments)]
fn estimate_chunk_cost(
    gpu: &Gpu,
    region: &Region,
    table: &WindowTable,
    views: &[ArrayView],
    builder: &KernelBuilder<'_>,
    c: usize,
    k0: i64,
    k1: i64,
) -> f64 {
    let p = gpu.profile();
    let mut t = 0.0;
    for (i, m) in region.spec.maps.iter().enumerate() {
        let (a, b) = table.ranges[i][c];
        let bytes = (b - a) as u64 * m.split.slice_elems() as u64 * gpsim::ELEM_BYTES;
        if m.dir.is_input() {
            t += p.h2d_time(bytes, true).as_secs_f64();
        }
        if m.dir.is_output() {
            t += p.d2h_time(bytes, true).as_secs_f64();
        }
    }
    let probe = builder(&ChunkCtx {
        k0,
        k1,
        views: views.to_vec(),
    });
    t + p.kernel_time(probe.cost.flops, probe.cost.bytes).as_secs_f64()
}

/// Resolve the chunk → stream map under the configured policy.
fn assign_streams(
    gpu: &Gpu,
    region: &Region,
    plan: &Plan,
    table: &WindowTable,
    views: &[ArrayView],
    builder: &KernelBuilder<'_>,
    policy: StreamAssignment,
) -> Vec<usize> {
    let ns = plan.num_streams;
    match policy {
        StreamAssignment::RoundRobin => (0..plan.chunks.len()).map(|c| c % ns).collect(),
        StreamAssignment::LeastLoaded => {
            let mut loads = vec![0.0f64; ns];
            let mut out = Vec::with_capacity(plan.chunks.len());
            for (c, &(k0, k1)) in plan.chunks.iter().enumerate() {
                let cost = estimate_chunk_cost(gpu, region, table, views, builder, c, k0, k1);
                let (best, _) = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("ns >= 1");
                loads[best] += cost;
                out.push(best);
            }
            out
        }
    }
}

/// With a non-round-robin assignment, the chunks simultaneously in
/// flight are the i-th entries of each stream's queue (streams advance
/// roughly in lockstep rounds, skewed by load) — widen each ring to
/// cover the dependency span of every round and its successor.
fn widen_rings_for_assignment(
    region: &Region,
    plan: &mut Plan,
    table: &WindowTable,
    chunk_stream: &[usize],
) {
    let ns = plan.num_streams;
    let mut per_stream: Vec<Vec<usize>> = vec![Vec::new(); ns];
    for (c, &s) in chunk_stream.iter().enumerate() {
        per_stream[s].push(c);
    }
    let rounds = per_stream.iter().map(Vec::len).max().unwrap_or(0);
    for (i, m) in region.spec.maps.iter().enumerate() {
        let mut worst = plan.ring_slots[i] as i64;
        for r in 0..rounds {
            // Chunks live during rounds r and r+1 across all streams.
            let mut a_min = i64::MAX;
            let mut b_max = i64::MIN;
            for q in per_stream.iter() {
                for rr in [r, r + 1] {
                    if let Some(&c) = q.get(rr) {
                        let (a, b) = table.ranges[i][c];
                        a_min = a_min.min(a);
                        b_max = b_max.max(b);
                    }
                }
            }
            if a_min < b_max {
                worst = worst.max(b_max - a_min);
            }
        }
        plan.ring_slots[i] = (worst as usize).min(m.split.extent());
    }
    plan.buffer_bytes = region
        .spec
        .maps
        .iter()
        .zip(&plan.ring_slots)
        .map(|(m, &s)| crate::plan::map_buffer_bytes(&m.split, s))
        .sum();
}

/// Classify every chunk of a resolved plan into its enqueue recipe: the
/// residency/hazard logic of the Pipelined-buffer driver, run once, with
/// the device untouched. Returns the per-chunk [`ChunkStep`]s and the
/// halo-consumer graph (`dependents[c]` = chunks whose kernels read
/// slices chunk `c` copied).
///
/// A compiled wait names `(producing chunk, stage)`; it is only recorded
/// when that stage will actually record an event (a chunk records an H2D
/// event iff it has copy runs, a D2H event iff it has drain runs, and
/// always records a kernel event), so replay can resolve every wait.
pub(crate) fn classify_chunks(
    spec: &RegionSpec,
    plan: &Plan,
    table: &WindowTable,
    chunk_stream: &[usize],
    track_residency: bool,
) -> (Vec<ChunkStep>, Vec<Vec<usize>>) {
    let n_chunks = plan.chunks.len();
    let mut books: Vec<RingBook> = plan.ring_slots.iter().map(|&s| RingBook::new(s)).collect();
    let mut steps: Vec<ChunkStep> = Vec::with_capacity(n_chunks);
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_chunks];
    let mut missing: Vec<i64> = Vec::new();
    let mut runs_scratch: Vec<(i64, usize)> = Vec::new();
    for c in 0..n_chunks {
        let same_stream = |other: usize| chunk_stream[other] == chunk_stream[c];
        let mut copy_waits: Vec<(usize, EvKind)> = Vec::new();
        let mut copy_runs: Vec<(usize, i64, usize)> = Vec::new();
        let mut kernel_waits: Vec<(usize, EvKind, WaitCause)> = Vec::new();
        let mut out_runs: Vec<(usize, i64, usize)> = Vec::new();

        for (i, m) in spec.maps.iter().enumerate() {
            if !m.dir.is_input() {
                continue;
            }
            let (a, b) = table.ranges[i][c];
            let book = &mut books[i];
            missing.clear();
            for sl in a..b {
                match book.resident_copier(sl).filter(|_| track_residency) {
                    Some(owner) => {
                        // RAW across streams: wait for the copier's group.
                        if owner != c
                            && !same_stream(owner)
                            && !steps[owner].copy_runs.is_empty()
                        {
                            push_wait_cause(
                                &mut kernel_waits,
                                owner,
                                EvKind::H2d,
                                WaitCause::Dependency,
                            );
                        }
                        if owner != c && !dependents[owner].contains(&c) {
                            dependents[owner].push(c);
                        }
                    }
                    None => missing.push(sl),
                }
            }
            // Evictions: overwriting a slot whose old slice may still be
            // in use by another stream's kernel (WAR) or pending D2H.
            for &sl in &missing {
                let slot = book.slot(sl);
                if book.mapped[slot].is_some() {
                    let rs = &mut book.readers[slot];
                    for &r in rs.iter() {
                        if !same_stream(r) {
                            push_wait(&mut copy_waits, r, EvKind::Kernel);
                        }
                    }
                    rs.clear();
                    if let Some(w) = book.written_by[slot].take() {
                        if !same_stream(w) && !steps[w].out_runs.is_empty() {
                            push_wait(&mut copy_waits, w, EvKind::D2h);
                        }
                    }
                }
                book.mapped[slot] = Some(sl);
                book.copied_by[slot] = Some(c);
            }
            // Group missing slices into consecutive runs (affine windows
            // produce one run; custom window functions may leave gaps),
            // then split each run at ring-wrap boundaries.
            let mut run_start: Option<i64> = None;
            let mut prev = 0i64;
            for &sl in &missing {
                match run_start {
                    Some(_) if sl == prev + 1 => {}
                    Some(st) => {
                        runs_scratch.clear();
                        slot_runs_into(st, prev + 1, book.slots, &mut runs_scratch);
                        copy_runs.extend(runs_scratch.iter().map(|&(start, len)| (i, start, len)));
                        run_start = Some(sl);
                    }
                    None => run_start = Some(sl),
                }
                prev = sl;
            }
            if let Some(st) = run_start {
                runs_scratch.clear();
                slot_runs_into(st, prev + 1, book.slots, &mut runs_scratch);
                copy_runs.extend(runs_scratch.iter().map(|&(start, len)| (i, start, len)));
            }
            // This chunk reads all its needed slices.
            for sl in a..b {
                let slot = book.slot(sl);
                debug_assert_eq!(book.mapped[slot], Some(sl));
                book.readers[slot].push(c);
            }
        }

        // Output slots: kernel writes them, so the previous occupant's
        // D2H (and, for ToFrom, any readers) must be complete first.
        for (i, m) in spec.maps.iter().enumerate() {
            if !m.dir.is_output() {
                continue;
            }
            let (a, b) = table.ranges[i][c];
            let book = &mut books[i];
            for sl in a..b {
                let slot = book.slot(sl);
                match book.mapped[slot] {
                    Some(old) if old != sl => {
                        if let Some(w) = book.written_by[slot].take() {
                            if !same_stream(w) && !steps[w].out_runs.is_empty() {
                                push_wait_cause(
                                    &mut kernel_waits,
                                    w,
                                    EvKind::D2h,
                                    WaitCause::RingReuse,
                                );
                            }
                        }
                        let rs = &mut book.readers[slot];
                        for &r in rs.iter() {
                            if !same_stream(r) {
                                push_wait_cause(
                                    &mut kernel_waits,
                                    r,
                                    EvKind::Kernel,
                                    WaitCause::RingReuse,
                                );
                            }
                        }
                        rs.clear();
                        book.copied_by[slot] = None;
                        book.mapped[slot] = Some(sl);
                    }
                    None => book.mapped[slot] = Some(sl),
                    _ => {}
                }
            }
            // The chunk's drain runs, and ownership of the drained slots.
            runs_scratch.clear();
            slot_runs_into(a, b, book.slots, &mut runs_scratch);
            out_runs.extend(runs_scratch.iter().map(|&(start, len)| (i, start, len)));
            for sl in a..b {
                let slot = book.slot(sl);
                debug_assert_eq!(book.mapped[slot], Some(sl));
                book.written_by[slot] = Some(c);
            }
        }

        let mapped_slots = books
            .iter()
            .map(|b| b.mapped.iter().filter(|m| m.is_some()).count())
            .sum();
        steps.push(ChunkStep {
            stream: chunk_stream[c],
            copy_waits,
            copy_runs,
            kernel_waits,
            out_runs,
            mapped_slots,
        });
    }
    (steps, dependents)
}

/// Compile a region into a reusable [`CompiledPlan`] for the
/// Pipelined-buffer model: resolve the schedule (honouring
/// `pipeline_mem_limit`), build the window table, assign chunks to
/// streams, and classify every residency/hazard decision into per-chunk
/// enqueue recipes.
///
/// The result can be executed any number of times via
/// [`RunOptions::with_compiled`](crate::RunOptions::with_compiled) —
/// replaying it issues only device commands, no planning. The driver
/// validates the plan against the region/device/options it is asked to
/// run and silently recompiles on mismatch, so a stale plan can cost
/// time but never correctness.
///
/// `gpu` is only mutated for the [`StreamAssignment::LeastLoaded`]
/// cost probe; with the default round-robin policy the device is
/// untouched.
pub fn compile_plan(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
) -> RtResult<CompiledPlan> {
    region.validate(gpu)?;
    compile_impl(gpu, region, builder, opts)
}

/// [`compile_plan`] body (validation already done by the caller).
fn compile_impl(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
) -> RtResult<CompiledPlan> {
    let mut plan = resolve_plan(&region.spec, gpu.profile(), region.lo, region.hi)?;
    if opts.minimal_slots {
        plan.ring_slots = region
            .spec
            .maps
            .iter()
            .map(|m| crate::plan::ring_slots_min(&m.split, plan.chunk_size))
            .collect();
        plan.buffer_bytes = region
            .spec
            .maps
            .iter()
            .zip(&plan.ring_slots)
            .map(|(m, &s)| crate::plan::map_buffer_bytes(&m.split, s))
            .sum();
    }
    let table = build_window_table(&region.spec, &plan.chunks, &[])?;
    compile_from_plan(gpu, region, builder, opts, plan, table, false)
}

/// Compile from an already-resolved plan + window table (shared by the
/// affine and window-function paths).
fn compile_from_plan(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
    mut plan: Plan,
    table: WindowTable,
    custom_windows: bool,
) -> RtResult<CompiledPlan> {
    // Resolve the chunk → stream assignment before sizing rings: a
    // non-round-robin assignment widens the set of simultaneously
    // in-flight chunks, and the rings must cover it or write-after-read
    // stalls serialize the pipeline.
    let chunk_stream = if opts.assignment == StreamAssignment::RoundRobin {
        (0..plan.chunks.len())
            .map(|c| c % plan.num_streams)
            .collect::<Vec<_>>()
    } else {
        // Probe views over a placeholder allocation: builders may consult
        // views to compute costs, but probe kernels are never executed.
        let probe = gpu.alloc(1)?;
        let probe_views: Vec<ArrayView> = region
            .spec
            .maps
            .iter()
            .map(|m| match &m.split {
                SplitSpec::OneD { slice_elems, .. } => {
                    ArrayView::ring_1d(probe, *slice_elems, 1)
                }
                SplitSpec::ColBlocks {
                    rows, block_cols, ..
                } => ArrayView::ring_2d(probe, *block_cols, *block_cols, *rows, 1),
            })
            .collect();
        let assignment = assign_streams(
            gpu,
            region,
            &plan,
            &table,
            &probe_views,
            builder,
            opts.assignment,
        );
        gpu.free(probe)?;
        assignment
    };
    if opts.assignment != StreamAssignment::RoundRobin {
        widen_rings_for_assignment(region, &mut plan, &table, &chunk_stream);
    }

    let (steps, dependents) = classify_chunks(
        &region.spec,
        &plan,
        &table,
        &chunk_stream,
        opts.track_residency,
    );
    let plan_label = format!(
        "plan(chunks={}, streams={}, slots={:?})",
        plan.chunks.len(),
        plan.num_streams,
        plan.ring_slots
    );
    let key = PlanKey {
        spec: region.spec.clone(),
        lo: region.lo,
        hi: region.hi,
        profile: gpu.profile().clone(),
        track_residency: opts.track_residency,
        minimal_slots: opts.minimal_slots,
        assignment: opts.assignment,
        custom_windows,
    };
    Ok(CompiledPlan {
        plan,
        table,
        chunk_stream,
        steps,
        dependents,
        plan_label,
        key,
    })
}

/// Is a previously compiled plan valid for this run? Custom-window plans
/// never match: their table is not derivable from the spec alone.
fn key_matches(key: &PlanKey, gpu: &Gpu, region: &Region, opts: &BufferOptions) -> bool {
    !key.custom_windows
        && key.lo == region.lo
        && key.hi == region.hi
        && key.track_residency == opts.track_residency
        && key.minimal_slots == opts.minimal_slots
        && key.assignment == opts.assignment
        && key.spec == region.spec
        && key.profile == *gpu.profile()
}

/// The **Pipelined-buffer** model driver proper (affine windows),
/// optionally with chunk-granular recovery (see module docs).
///
/// Respects `pipeline_mem_limit` by shrinking the schedule (see
/// [`resolve_plan`]); honours static and adaptive schedules; inflates the
/// kernel cost by the region's `index_overhead` to account for the
/// runtime's mod-index translation inside kernels (paper §V-D).
///
/// Resets the context's activity counters. Compiles a fresh plan every
/// run; see [`buffer_impl_with`] for the cached-plan fast path.
pub(crate) fn buffer_impl(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
    recovery: Option<&RecoveryCtx<'_>>,
) -> RtResult<DriverOutcome> {
    buffer_impl_with(gpu, region, builder, opts, recovery, None)
}

/// [`buffer_impl`] with an optional pre-compiled plan: when the plan's
/// key matches this run, replay it directly (zero planning work);
/// otherwise compile fresh — a stale plan can cost time, never
/// correctness.
pub(crate) fn buffer_impl_with(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
    recovery: Option<&RecoveryCtx<'_>>,
    compiled: Option<&CompiledPlan>,
) -> RtResult<DriverOutcome> {
    region.validate(gpu)?;
    if let Some(cp) = compiled {
        if key_matches(&cp.key, gpu, region, opts) {
            return execute_compiled(gpu, region, builder, cp, recovery, true);
        }
    }
    let cp = compile_impl(gpu, region, builder, opts)?;
    execute_compiled(gpu, region, builder, &cp, recovery, false)
}

/// Driver for regions with **explicit dependency functions** — the
/// paper's §VII "function-based extension that allows the developer to
/// pass in a function pointer" for dependencies the affine clause syntax
/// cannot express. `windows[i]`, when present, overrides map `i`'s
/// affine window: given a chunk `[k0, k1)` it returns the slice range
/// `[a, b)` that must be resident. Ring capacities are derived from the
/// actual per-chunk table. Optionally runs with recovery; the public
/// entry point is [`crate::run::run_window_fn`].
pub(crate) fn buffer_fn_impl(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    windows: &[Option<&WindowFn<'_>>],
    recovery: Option<&RecoveryCtx<'_>>,
) -> RtResult<DriverOutcome> {
    region.validate_binding(gpu)?;
    let (plan, table) = resolve_plan_fn(
        &region.spec,
        gpu.profile(),
        region.lo,
        region.hi,
        windows,
    )?;
    let cp = compile_from_plan(
        gpu,
        region,
        builder,
        &BufferOptions::default(),
        plan,
        table,
        true,
    )?;
    execute_compiled(gpu, region, builder, &cp, recovery, false)
}

/// Resolve a compiled `(chunk, stage)` wait to the live event recorded
/// during this replay.
fn compiled_event(
    h2d_ev: &[Option<EventId>],
    kernel_ev: &[Option<EventId>],
    d2h_ev: &[Option<EventId>],
    ch: usize,
    kind: EvKind,
) -> EventId {
    match kind {
        EvKind::H2d => h2d_ev[ch],
        EvKind::Kernel => kernel_ev[ch],
        EvKind::D2h => d2h_ev[ch],
    }
    .expect("compiled wait references a stage that records an event")
}

/// Replay a [`CompiledPlan`]: allocate rings and streams, then issue the
/// pre-classified per-chunk enqueue sequences. The only host work per
/// chunk is the kernel builder call and the raw enqueues — every
/// residency, hazard and run-grouping decision was made at compile time.
fn execute_compiled(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    cp: &CompiledPlan,
    recovery: Option<&RecoveryCtx<'_>>,
    plan_reused: bool,
) -> RtResult<DriverOutcome> {
    let plan = &cp.plan;
    let table = &cp.table;
    gpu.reset_counters();
    let t0 = gpu.now();
    if gpu.timeline_enabled() {
        gpu.push_host_span(cp.plan_label.clone(), HostSpanKind::Plan, t0, t0);
    }

    // --- Allocate ring buffers and build ring views --------------------
    let n_maps = region.spec.maps.len();
    let mut views: Vec<ArrayView> = Vec::with_capacity(n_maps);
    for (m, &slots) in region.spec.maps.iter().zip(&plan.ring_slots) {
        let alloc = match &m.split {
            SplitSpec::OneD { slice_elems, .. } => gpu
                .alloc(slots * slice_elems)
                .map(|ptr| ArrayView::ring_1d(ptr, *slice_elems, slots)),
            SplitSpec::ColBlocks {
                rows, block_cols, ..
            } => gpu
                .alloc_pitched(*rows, slots * block_cols)
                .map(|(ptr, pitch)| ArrayView::ring_2d(ptr, pitch, *block_cols, *rows, slots)),
        };
        match alloc {
            Ok(v) => views.push(v),
            Err(e) => {
                // Roll back partial ring allocations on failure.
                for v in &views {
                    let _ = gpu.free(v.base());
                }
                return Err(e.into());
            }
        }
    }

    let streams: Vec<StreamId> = match (0..plan.num_streams)
        .map(|_| gpu.create_stream())
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(s) => s,
        Err(e) => {
            for v in &views {
                let _ = gpu.free(v.base());
            }
            return Err(e.into());
        }
    };
    let gpu_mem = gpu.current_mem();

    let n_chunks = plan.chunks.len();
    let mut h2d_ev: Vec<Option<EventId>> = vec![None; n_chunks];
    let mut kernel_ev: Vec<Option<EventId>> = vec![None; n_chunks];
    let mut d2h_ev: Vec<Option<EventId>> = vec![None; n_chunks];

    // Ring-slot occupancy over host time (mapped slots across all rings,
    // precomputed per chunk at compile time) — a counter track in the
    // trace export.
    let mut occupancy: Vec<(u64, f64)> = Vec::new();
    if gpu.timeline_enabled() {
        occupancy.push((gpu.now().as_ns(), 0.0));
    }

    // Per-chunk enqueue-sequence ranges (failure → chunk lookup).
    let mut chunk_seqs: Vec<(u64, u64)> = Vec::with_capacity(n_chunks);

    let mut recovery_stats = RecoveryStats::default();
    let mut retry_samples: Vec<(u64, f64)> = Vec::new();
    let mut exhausted = None;
    // Per-chunk scratch, hoisted so steady-state chunks reuse capacity.
    let mut chunk_ranges: Vec<(i64, i64)> = Vec::new();
    let body = (|| -> RtResult<()> {
    for (c, step) in cp.steps.iter().enumerate() {
        let (k0, k1) = plan.chunks[c];
        let s = streams[step.stream];
        let seq0 = gpu.next_seq();

        // Eviction hazards are, by definition, ring-slot reuse stalls.
        for &(ch, kind) in &step.copy_waits {
            let e = compiled_event(&h2d_ev, &kernel_ev, &d2h_ev, ch, kind);
            gpu.wait_event_with_cause(s, e, WaitCause::RingReuse)?;
        }
        for &(i, start, len) in &step.copy_runs {
            enqueue_h2d_ring(gpu, region, &views[i], i, start, len, s)?;
        }
        if !step.copy_runs.is_empty() {
            let e = gpu.create_event();
            gpu.record_event(s, e)?;
            h2d_ev[c] = Some(e);
        }

        for &(ch, kind, cause) in &step.kernel_waits {
            let e = compiled_event(&h2d_ev, &kernel_ev, &d2h_ev, ch, kind);
            gpu.wait_event_with_cause(s, e, cause)?;
        }
        let ctx = ChunkCtx {
            k0,
            k1,
            views: views.clone(),
        };
        let mut kernel = builder(&ctx);
        // Mod-index translation adds instructions *and* address-generation
        // pressure, so both roofline terms inflate.
        let infl = 1.0 + region.spec.index_overhead;
        kernel.cost.flops = (kernel.cost.flops as f64 * infl) as u64;
        kernel.cost.bytes = (kernel.cost.bytes as f64 * infl) as u64;
        chunk_ranges.clear();
        chunk_ranges.extend((0..n_maps).map(|i| table.ranges[i][c]));
        let kernel = declare_accesses(gpu, kernel, region, &views, &chunk_ranges);
        gpu.launch(s, kernel)?;
        let ke = gpu.create_event();
        gpu.record_event(s, ke)?;
        kernel_ev[c] = Some(ke);

        for &(i, start, len) in &step.out_runs {
            enqueue_d2h_ring(gpu, region, &views[i], i, start, len, s)?;
        }
        if !step.out_runs.is_empty() {
            let e = gpu.create_event();
            gpu.record_event(s, e)?;
            d2h_ev[c] = Some(e);
        }
        chunk_seqs.push((seq0, gpu.next_seq()));
        if gpu.timeline_enabled() {
            occupancy.push((gpu.now().as_ns(), step.mapped_slots as f64));
        }
    }

    match recovery.filter(|r| r.policy.enabled()) {
        None => gpu.synchronize()?,
        Some(rctx) => {
            let drained = drain_with_recovery(
                gpu,
                ExecModel::PipelinedBuffer,
                region,
                rctx,
                &plan.chunks,
                &chunk_seqs,
                &cp.dependents,
                |gpu, c| {
                    // Re-enqueue the chunk's full triplet into the *same*
                    // ring slots (the slice → slot map is static). The
                    // device is drained before each reissue, so
                    // overwriting slots that later chunks used is safe —
                    // their results are already on the host.
                    let (k0, k1) = plan.chunks[c];
                    let s = streams[cp.chunk_stream[c]];
                    let mut n = 0u64;
                    for (i, m) in region.spec.maps.iter().enumerate() {
                        if !m.dir.is_input() {
                            continue;
                        }
                        let (a, b) = table.ranges[i][c];
                        for (start, len) in slot_runs(a, b, plan.ring_slots[i]) {
                            enqueue_h2d_ring(gpu, region, &views[i], i, start, len, s)?;
                            n += 1;
                        }
                    }
                    let ctx = ChunkCtx {
                        k0,
                        k1,
                        views: views.clone(),
                    };
                    let mut kernel = builder(&ctx);
                    let infl = 1.0 + region.spec.index_overhead;
                    kernel.cost.flops = (kernel.cost.flops as f64 * infl) as u64;
                    kernel.cost.bytes = (kernel.cost.bytes as f64 * infl) as u64;
                    let chunk_ranges: Vec<(i64, i64)> =
                        (0..n_maps).map(|i| table.ranges[i][c]).collect();
                    let kernel = declare_accesses(gpu, kernel, region, &views, &chunk_ranges);
                    gpu.launch(s, kernel)?;
                    n += 1;
                    for (i, m) in region.spec.maps.iter().enumerate() {
                        if !m.dir.is_output() {
                            continue;
                        }
                        let (a, b) = table.ranges[i][c];
                        for (start, len) in slot_runs(a, b, plan.ring_slots[i]) {
                            enqueue_d2h_ring(gpu, region, &views[i], i, start, len, s)?;
                            n += 1;
                        }
                    }
                    Ok(n)
                },
            )?;
            match drained {
                DrainResult::Clean {
                    stats,
                    retry_samples: rs,
                } => {
                    recovery_stats = stats;
                    retry_samples = rs;
                }
                DrainResult::Exhausted {
                    chunk,
                    stage,
                    attempts,
                    source,
                    open,
                    stats,
                } => {
                    recovery_stats = stats;
                    exhausted = Some((chunk, stage, attempts, source, open));
                }
            }
        }
    }
    Ok(())
    })();
    if let Err(e) = body {
        // A failed run must not bleed into whatever runs next on this
        // device: drain the in-flight work, drop its failure records, and
        // release the rings so a whole-run retry (or the caller's next
        // run) starts from a clean device.
        while gpu.synchronize().is_err() {}
        let _ = gpu.take_failures();
        for &s in &streams {
            let _ = gpu.destroy_stream(s);
        }
        for v in &views {
            let _ = gpu.free(v.base());
        }
        return Err(e);
    }

    let total = gpu.now() - t0;
    let mut report = RunReport::from_gpu(
        ExecModel::PipelinedBuffer,
        total,
        gpu,
        gpu_mem,
        plan.buffer_bytes,
        n_chunks,
        plan.num_streams,
    );
    // Report the logical workload: reissues are recovery overhead, not
    // extra work, so a recovered run matches a fault-free one.
    report.commands = report.commands.saturating_sub(recovery_stats.reissued_commands);
    report.recovery = recovery_stats;
    report.plan_reused = plan_reused;
    if gpu.timeline_enabled() {
        report.counter_tracks.push(CounterTrack {
            name: "ring_slot_occupancy".into(),
            samples: occupancy,
        });
        if !retry_samples.is_empty() {
            report.counter_tracks.push(CounterTrack {
                name: "retries_in_flight".into(),
                samples: retry_samples,
            });
        }
    }
    for s in streams {
        gpu.destroy_stream(s)?;
    }
    for v in &views {
        gpu.free(v.base())?;
    }
    match exhausted {
        None => Ok(DriverOutcome::Done(report)),
        Some((chunk, stage, attempts, source, open)) => Ok(DriverOutcome::Exhausted {
            unfinished: open.into_iter().map(|c| plan.chunks[c]).collect(),
            report,
            chunk,
            stage,
            attempts,
            source,
        }),
    }
}

/// Copy slices `[start, start+len)` of map `i` from the host array into
/// their (contiguous) ring slots.
fn enqueue_h2d_ring(
    gpu: &mut Gpu,
    region: &Region,
    view: &ArrayView,
    i: usize,
    start: i64,
    len: usize,
    stream: StreamId,
) -> RtResult<()> {
    let m = &region.spec.maps[i];
    let host = region.arrays[i];
    match &m.split {
        SplitSpec::OneD { slice_elems, .. } => {
            gpu.memcpy_h2d_async(
                stream,
                host,
                start as usize * slice_elems,
                view.slice_ptr(start),
                len * slice_elems,
            )?;
        }
        SplitSpec::ColBlocks {
            rows,
            block_cols,
            row_stride,
            ..
        } => {
            let (dev, stride) = view.block_ptr(start);
            gpu.memcpy2d_h2d_async(
                stream,
                Copy2D {
                    rows: *rows,
                    row_elems: len * block_cols,
                    host,
                    host_off: start as usize * block_cols,
                    host_stride: *row_stride,
                    dev,
                    dev_stride: stride,
                },
            )?;
        }
    }
    Ok(())
}

/// Copy slices `[start, start+len)` of map `i` from their ring slots back
/// to the host array.
fn enqueue_d2h_ring(
    gpu: &mut Gpu,
    region: &Region,
    view: &ArrayView,
    i: usize,
    start: i64,
    len: usize,
    stream: StreamId,
) -> RtResult<()> {
    let m = &region.spec.maps[i];
    let host = region.arrays[i];
    match &m.split {
        SplitSpec::OneD { slice_elems, .. } => {
            gpu.memcpy_d2h_async(
                stream,
                view.slice_ptr(start),
                len * slice_elems,
                host,
                start as usize * slice_elems,
            )?;
        }
        SplitSpec::ColBlocks {
            rows,
            block_cols,
            row_stride,
            ..
        } => {
            let (dev, stride) = view.block_ptr(start);
            gpu.memcpy2d_d2h_async(
                stream,
                Copy2D {
                    rows: *rows,
                    row_elems: len * block_cols,
                    host,
                    host_off: start as usize * block_cols,
                    host_stride: *row_stride,
                    dev,
                    dev_stride: stride,
                },
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_runs_split_at_wrap() {
        // Slices 3..9 in a 4-slot ring: slots 3 | 0 1 2 3 | 0.
        assert_eq!(slot_runs(3, 9, 4), vec![(3, 1), (4, 4), (8, 1)]);
        // Fully inside one revolution.
        assert_eq!(slot_runs(4, 7, 8), vec![(4, 3)]);
        // Empty range.
        assert!(slot_runs(5, 5, 4).is_empty());
        // Exact revolutions.
        assert_eq!(slot_runs(0, 8, 4), vec![(0, 4), (4, 4)]);
    }

    #[test]
    fn push_wait_dedupes_on_chunk_and_stage() {
        let mut v = Vec::new();
        push_wait(&mut v, 3, EvKind::Kernel);
        push_wait(&mut v, 3, EvKind::Kernel);
        push_wait(&mut v, 3, EvKind::D2h);
        assert_eq!(v, vec![(3, EvKind::Kernel), (3, EvKind::D2h)]);
        let mut w = Vec::new();
        push_wait_cause(&mut w, 1, EvKind::H2d, WaitCause::Dependency);
        push_wait_cause(&mut w, 1, EvKind::H2d, WaitCause::RingReuse);
        assert_eq!(w, vec![(1, EvKind::H2d, WaitCause::Dependency)]);
    }
}

//! The **Pipelined-buffer** driver — the paper's contribution.
//!
//! Each mapped array gets a small pre-allocated device ring buffer of
//! `slots` slices; slice `s` of the host array lives at ring slot
//! `s % slots` ("we copy chunk *i* to position (*i* % 4)", paper §IV).
//! The loop is divided into chunks dispatched round-robin over streams;
//! per chunk the runtime:
//!
//! 1. copies the chunk's not-yet-resident input slices into their ring
//!    slots (waiting, via events, for any still-running kernels that read
//!    the slices being evicted — the write-after-read hazard of ring
//!    reuse),
//! 2. launches the kernel (waiting for H2D groups of *other* streams that
//!    copied slices this chunk reuses, e.g. stencil halos — the
//!    read-after-write hazard),
//! 3. copies the chunk's output slices back to the host and records their
//!    completion (so a later chunk reusing the slot can wait — the
//!    write-after-write/D2H hazard).
//!
//! Residency tracking means shared halo slices are copied exactly once,
//! like the paper's dependency calculation that "removes the data that
//! only previous chunks require".


use gpsim::{Copy2D, CounterTrack, EventId, Gpu, HostSpanKind, StreamId, WaitCause};

use crate::error::RtResult;
use crate::exec::{declare_accesses, expect_done, KernelBuilder, Region};
use crate::plan::{build_window_table, resolve_plan, resolve_plan_fn, Plan, WindowFn, WindowTable};
use crate::recovery::{drain_with_recovery, DrainResult, DriverOutcome, RecoveryCtx, RecoveryStats};
use crate::report::{ExecModel, RunReport};
use crate::spec::SplitSpec;
use crate::view::{ArrayView, ChunkCtx};

/// Ring bookkeeping for one mapped array.
///
/// All metadata is keyed by ring slot, not by slice: an entry is only
/// meaningful while its slice is mapped (`mapped[slot] == Some(sl)`),
/// and eviction clears the slot's entries — so per-slot arrays give the
/// same semantics as slice-keyed maps without hashing on the classify
/// hot path (the reader vectors keep their capacity across reuse).
struct RingBook {
    slots: usize,
    /// slot → currently mapped slice.
    mapped: Vec<Option<i64>>,
    /// slot → chunk that copied the mapped slice in (inputs).
    copied_by: Vec<Option<usize>>,
    /// slot → chunks whose kernels read the mapped slice (inputs).
    readers: Vec<Vec<usize>>,
    /// slot → chunk that produced and drained the mapped slice (outputs).
    written_by: Vec<Option<usize>>,
}

impl RingBook {
    fn new(slots: usize) -> Self {
        RingBook {
            slots,
            mapped: vec![None; slots],
            copied_by: vec![None; slots],
            readers: vec![Vec::new(); slots],
            written_by: vec![None; slots],
        }
    }

    /// Ring slot of a slice.
    fn slot(&self, sl: i64) -> usize {
        sl.rem_euclid(self.slots as i64) as usize
    }

    /// The chunk that copied slice `sl` in, if `sl` is still resident.
    fn resident_copier(&self, sl: i64) -> Option<usize> {
        let slot = self.slot(sl);
        if self.mapped[slot] == Some(sl) {
            self.copied_by[slot]
        } else {
            None
        }
    }
}

/// Split the slice range `[lo, hi)` into ring-contiguous runs: a run ends
/// when the ring wraps (slot returns to 0), so each run is one contiguous
/// device range.
fn slot_runs_into(lo: i64, hi: i64, slots: usize, out: &mut Vec<(i64, usize)>) {
    let mut s = lo;
    while s < hi {
        let to_wrap = slots as i64 - s.rem_euclid(slots as i64);
        let end = (s + to_wrap).min(hi);
        out.push((s, (end - s) as usize));
        s = end;
    }
}

/// [`slot_runs_into`] returning a fresh vector (tests and cold paths).
fn slot_runs(lo: i64, hi: i64, slots: usize) -> Vec<(i64, usize)> {
    let mut out = Vec::new();
    slot_runs_into(lo, hi, slots, &mut out);
    out
}

fn push_unique(waits: &mut Vec<EventId>, e: EventId) {
    if !waits.contains(&e) {
        waits.push(e);
    }
}

/// [`push_unique`] for cause-tagged waits: dedupe on the event id (the
/// first cause recorded for an event wins).
fn push_unique_cause(waits: &mut Vec<(EventId, WaitCause)>, e: EventId, cause: WaitCause) {
    if !waits.iter().any(|(w, _)| *w == e) {
        waits.push((e, cause));
    }
}

/// How chunks are assigned to streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamAssignment {
    /// Chunk `c` goes to stream `c % num_streams` (the paper's
    /// prototype).
    #[default]
    RoundRobin,
    /// Each chunk goes to the stream with the least estimated enqueued
    /// work (transfer + roofline kernel time). Helps when chunk costs
    /// vary — uneven tails, custom dependency windows.
    LeastLoaded,
}

/// Ablation switches for the Pipelined-buffer driver (used by the
/// `ablations` bench to quantify each design choice; defaults reproduce
/// the paper's prototype).
#[derive(Debug, Clone, Copy)]
pub struct BufferOptions {
    /// Track slice residency and skip re-copies of halo slices already on
    /// the device. Off = every chunk copies its full window.
    pub track_residency: bool,
    /// Size each ring to the single-chunk minimum instead of covering all
    /// in-flight chunks: lower memory, but write-after-read stalls
    /// serialize the pipeline.
    pub minimal_slots: bool,
    /// Chunk-to-stream policy.
    pub assignment: StreamAssignment,
}

impl Default for BufferOptions {
    fn default() -> Self {
        BufferOptions {
            track_residency: true,
            minimal_slots: false,
            assignment: StreamAssignment::RoundRobin,
        }
    }
}

/// Estimate one chunk's device occupancy for the least-loaded policy:
/// input-window and output transfer times plus the roofline kernel time.
#[allow(clippy::too_many_arguments)]
fn estimate_chunk_cost(
    gpu: &Gpu,
    region: &Region,
    table: &WindowTable,
    views: &[ArrayView],
    builder: &KernelBuilder<'_>,
    c: usize,
    k0: i64,
    k1: i64,
) -> f64 {
    let p = gpu.profile();
    let mut t = 0.0;
    for (i, m) in region.spec.maps.iter().enumerate() {
        let (a, b) = table.ranges[i][c];
        let bytes = (b - a) as u64 * m.split.slice_elems() as u64 * gpsim::ELEM_BYTES;
        if m.dir.is_input() {
            t += p.h2d_time(bytes, true).as_secs_f64();
        }
        if m.dir.is_output() {
            t += p.d2h_time(bytes, true).as_secs_f64();
        }
    }
    let probe = builder(&ChunkCtx {
        k0,
        k1,
        views: views.to_vec(),
    });
    t + p.kernel_time(probe.cost.flops, probe.cost.bytes).as_secs_f64()
}

/// Resolve the chunk → stream map under the configured policy.
fn assign_streams(
    gpu: &Gpu,
    region: &Region,
    plan: &Plan,
    table: &WindowTable,
    views: &[ArrayView],
    builder: &KernelBuilder<'_>,
    policy: StreamAssignment,
) -> Vec<usize> {
    let ns = plan.num_streams;
    match policy {
        StreamAssignment::RoundRobin => (0..plan.chunks.len()).map(|c| c % ns).collect(),
        StreamAssignment::LeastLoaded => {
            let mut loads = vec![0.0f64; ns];
            let mut out = Vec::with_capacity(plan.chunks.len());
            for (c, &(k0, k1)) in plan.chunks.iter().enumerate() {
                let cost = estimate_chunk_cost(gpu, region, table, views, builder, c, k0, k1);
                let (best, _) = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("ns >= 1");
                loads[best] += cost;
                out.push(best);
            }
            out
        }
    }
}

/// With a non-round-robin assignment, the chunks simultaneously in
/// flight are the i-th entries of each stream's queue (streams advance
/// roughly in lockstep rounds, skewed by load) — widen each ring to
/// cover the dependency span of every round and its successor.
fn widen_rings_for_assignment(
    region: &Region,
    plan: &mut Plan,
    table: &WindowTable,
    chunk_stream: &[usize],
) {
    let ns = plan.num_streams;
    let mut per_stream: Vec<Vec<usize>> = vec![Vec::new(); ns];
    for (c, &s) in chunk_stream.iter().enumerate() {
        per_stream[s].push(c);
    }
    let rounds = per_stream.iter().map(Vec::len).max().unwrap_or(0);
    for (i, m) in region.spec.maps.iter().enumerate() {
        let mut worst = plan.ring_slots[i] as i64;
        for r in 0..rounds {
            // Chunks live during rounds r and r+1 across all streams.
            let mut a_min = i64::MAX;
            let mut b_max = i64::MIN;
            for q in per_stream.iter() {
                for rr in [r, r + 1] {
                    if let Some(&c) = q.get(rr) {
                        let (a, b) = table.ranges[i][c];
                        a_min = a_min.min(a);
                        b_max = b_max.max(b);
                    }
                }
            }
            if a_min < b_max {
                worst = worst.max(b_max - a_min);
            }
        }
        plan.ring_slots[i] = (worst as usize).min(m.split.extent());
    }
    plan.buffer_bytes = region
        .spec
        .maps
        .iter()
        .zip(&plan.ring_slots)
        .map(|(m, &s)| crate::plan::map_buffer_bytes(&m.split, s))
        .sum();
}

/// Run a region under the **Pipelined-buffer** model (see module docs).
///
/// Respects `pipeline_mem_limit` by shrinking the schedule (see
/// [`resolve_plan`]); honours static and adaptive schedules; inflates the
/// kernel cost by the region's `index_overhead` to account for the
/// runtime's mod-index translation inside kernels (paper §V-D).
///
/// Resets the context's activity counters.
#[deprecated(
    since = "0.2.0",
    note = "use `run_model(gpu, region, builder, ExecModel::PipelinedBuffer, &RunOptions::default())` \
            or `Pipeline::run`"
)]
pub fn run_pipelined_buffer(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
) -> RtResult<RunReport> {
    buffer_impl(gpu, region, builder, &BufferOptions::default(), None).map(expect_done)
}

/// [`run_pipelined_buffer`] with explicit ablation options.
#[deprecated(
    since = "0.2.0",
    note = "use `run_model` with `RunOptions { buffer, .. }` or `Pipeline::options`"
)]
pub fn run_pipelined_buffer_with(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
) -> RtResult<RunReport> {
    buffer_impl(gpu, region, builder, opts, None).map(expect_done)
}

/// The Pipelined-buffer driver proper (affine windows), optionally with
/// chunk-granular recovery.
pub(crate) fn buffer_impl(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
    recovery: Option<&RecoveryCtx<'_>>,
) -> RtResult<DriverOutcome> {
    region.validate(gpu)?;
    let mut plan = resolve_plan(&region.spec, gpu.profile(), region.lo, region.hi)?;
    if opts.minimal_slots {
        plan.ring_slots = region
            .spec
            .maps
            .iter()
            .map(|m| crate::plan::ring_slots_min(&m.split, plan.chunk_size))
            .collect();
        plan.buffer_bytes = region
            .spec
            .maps
            .iter()
            .zip(&plan.ring_slots)
            .map(|(m, &s)| crate::plan::map_buffer_bytes(&m.split, s))
            .sum();
    }
    let table = build_window_table(&region.spec, &plan.chunks, &[])?;
    run_buffer_inner(gpu, region, builder, opts, plan, &table, recovery)
}

/// Run a region with **explicit dependency functions** — the paper's
/// §VII "function-based extension that allows the developer to pass in a
/// function pointer" for dependencies the affine clause syntax cannot
/// express. `windows[i]`, when present, overrides map `i`'s affine
/// window: given a chunk `[k0, k1)` it returns the slice range `[a, b)`
/// that must be resident. Ring capacities are derived from the actual
/// per-chunk table.
#[deprecated(since = "0.2.0", note = "use `run_window_fn` or `Pipeline::run` with window functions")]
pub fn run_pipelined_buffer_fn(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    windows: &[Option<&WindowFn<'_>>],
) -> RtResult<RunReport> {
    buffer_fn_impl(gpu, region, builder, windows, None).map(expect_done)
}

/// [`run_pipelined_buffer_fn`] body, optionally with recovery.
pub(crate) fn buffer_fn_impl(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    windows: &[Option<&WindowFn<'_>>],
    recovery: Option<&RecoveryCtx<'_>>,
) -> RtResult<DriverOutcome> {
    region.validate_binding(gpu)?;
    let (plan, table) = resolve_plan_fn(
        &region.spec,
        gpu.profile(),
        region.lo,
        region.hi,
        windows,
    )?;
    run_buffer_inner(
        gpu,
        region,
        builder,
        &BufferOptions::default(),
        plan,
        &table,
        recovery,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_buffer_inner(
    gpu: &mut Gpu,
    region: &Region,
    builder: &KernelBuilder<'_>,
    opts: &BufferOptions,
    mut plan: Plan,
    table: &WindowTable,
    recovery: Option<&RecoveryCtx<'_>>,
) -> RtResult<DriverOutcome> {
    gpu.reset_counters();
    let t0 = gpu.now();
    gpu.push_host_span(
        format!(
            "plan(chunks={}, streams={}, slots={:?})",
            plan.chunks.len(),
            plan.num_streams,
            plan.ring_slots
        ),
        HostSpanKind::Plan,
        t0,
        t0,
    );

    // --- Resolve the chunk → stream assignment -------------------------
    // Done before ring allocation because non-round-robin assignments
    // widen the set of simultaneously in-flight chunks, and the rings
    // must cover it or write-after-read stalls serialize the pipeline.
    let chunk_stream = if opts.assignment == StreamAssignment::RoundRobin {
        (0..plan.chunks.len())
            .map(|c| c % plan.num_streams)
            .collect::<Vec<_>>()
    } else {
        // Probe views over a placeholder allocation: builders may consult
        // views to compute costs, but probe kernels are never executed.
        let probe = gpu.alloc(1)?;
        let probe_views: Vec<ArrayView> = region
            .spec
            .maps
            .iter()
            .map(|m| match &m.split {
                SplitSpec::OneD { slice_elems, .. } => {
                    ArrayView::ring_1d(probe, *slice_elems, 1)
                }
                SplitSpec::ColBlocks {
                    rows, block_cols, ..
                } => ArrayView::ring_2d(probe, *block_cols, *block_cols, *rows, 1),
            })
            .collect();
        let assignment = assign_streams(
            gpu,
            region,
            &plan,
            table,
            &probe_views,
            builder,
            opts.assignment,
        );
        gpu.free(probe)?;
        assignment
    };
    if opts.assignment != StreamAssignment::RoundRobin {
        widen_rings_for_assignment(region, &mut plan, table, &chunk_stream);
    }

    // --- Allocate ring buffers and build ring views --------------------
    let n_maps = region.spec.maps.len();
    let mut views: Vec<ArrayView> = Vec::with_capacity(n_maps);
    let mut books = Vec::with_capacity(n_maps);
    for (m, &slots) in region.spec.maps.iter().zip(&plan.ring_slots) {
        let alloc = match &m.split {
            SplitSpec::OneD { slice_elems, .. } => gpu
                .alloc(slots * slice_elems)
                .map(|ptr| ArrayView::ring_1d(ptr, *slice_elems, slots)),
            SplitSpec::ColBlocks {
                rows, block_cols, ..
            } => gpu
                .alloc_pitched(*rows, slots * block_cols)
                .map(|(ptr, pitch)| ArrayView::ring_2d(ptr, pitch, *block_cols, *rows, slots)),
        };
        match alloc {
            Ok(v) => views.push(v),
            Err(e) => {
                // Roll back partial ring allocations on failure.
                for v in &views {
                    let _ = gpu.free(v.base());
                }
                return Err(e.into());
            }
        }
        books.push(RingBook::new(slots));
    }

    let streams: Vec<StreamId> = match (0..plan.num_streams)
        .map(|_| gpu.create_stream())
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(s) => s,
        Err(e) => {
            for v in &views {
                let _ = gpu.free(v.base());
            }
            return Err(e.into());
        }
    };
    let gpu_mem = gpu.current_mem();

    let n_chunks = plan.chunks.len();
    let mut h2d_ev: Vec<Option<EventId>> = vec![None; n_chunks];
    let mut kernel_ev: Vec<Option<EventId>> = vec![None; n_chunks];
    let mut d2h_ev: Vec<Option<EventId>> = vec![None; n_chunks];

    // Ring-slot occupancy over host time (mapped slots across all rings),
    // sampled once per chunk — a counter track in the trace export.
    let mut occupancy: Vec<(u64, f64)> = Vec::new();
    let mut sample_occupancy = |gpu: &Gpu, books: &[RingBook]| {
        if gpu.timeline_enabled() {
            let mapped: usize = books
                .iter()
                .map(|b| b.mapped.iter().filter(|m| m.is_some()).count())
                .sum();
            occupancy.push((gpu.now().as_ns(), mapped as f64));
        }
    };
    sample_occupancy(gpu, &books);

    let recovering = recovery.is_some_and(|r| r.policy.enabled());
    // Per-chunk enqueue-sequence ranges (failure → chunk lookup) and the
    // halo-consumer graph: with residency tracking, chunk `d` may read a
    // slice copied by chunk `c`; if `c`'s H2D fails, `d`'s kernel read
    // stale ring data and retired cleanly, so `d` must be retried too.
    let mut chunk_seqs: Vec<(u64, u64)> = Vec::with_capacity(n_chunks);
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_chunks];

    let mut recovery_stats = RecoveryStats::default();
    let mut retry_samples: Vec<(u64, f64)> = Vec::new();
    let mut exhausted = None;
    // Per-chunk scratch, hoisted so steady-state chunks reuse capacity
    // instead of re-allocating on every iteration of the hot loop.
    let mut copy_runs: Vec<(usize, i64, usize)> = Vec::new();
    let mut copy_waits: Vec<EventId> = Vec::new();
    let mut kernel_waits: Vec<(EventId, WaitCause)> = Vec::new();
    let mut missing: Vec<i64> = Vec::new();
    let mut runs_scratch: Vec<(i64, usize)> = Vec::new();
    let mut chunk_ranges: Vec<(i64, i64)> = Vec::new();
    let body = (|| -> RtResult<()> {
    for (c, &(k0, k1)) in plan.chunks.iter().enumerate() {
        let s = streams[chunk_stream[c]];
        let same_stream = |other: usize| chunk_stream[other] == chunk_stream[c];
        let seq0 = gpu.next_seq();

        // ---- Pass 1: classify slices, collect hazards ------------------
        // (map index, run start slice, run length)
        copy_runs.clear();
        copy_waits.clear();
        kernel_waits.clear();

        for (i, m) in region.spec.maps.iter().enumerate() {
            if !m.dir.is_input() {
                continue;
            }
            let (a, b) = table.ranges[i][c];
            let book = &mut books[i];
            missing.clear();
            for sl in a..b {
                match book.resident_copier(sl).filter(|_| opts.track_residency) {
                    Some(owner) => {
                        // RAW across streams: wait for the copier's group.
                        if owner != c && !same_stream(owner) {
                            if let Some(e) = h2d_ev[owner] {
                                push_unique_cause(&mut kernel_waits, e, WaitCause::Dependency);
                            }
                        }
                        if recovering && owner != c && !dependents[owner].contains(&c) {
                            dependents[owner].push(c);
                        }
                    }
                    None => missing.push(sl),
                }
            }
            // Evictions: overwriting a slot whose old slice may still be
            // in use by another stream's kernel (WAR) or pending D2H.
            for &sl in &missing {
                let slot = book.slot(sl);
                if book.mapped[slot].is_some() {
                    let rs = &mut book.readers[slot];
                    for &r in rs.iter() {
                        if !same_stream(r) {
                            if let Some(e) = kernel_ev[r] {
                                push_unique(&mut copy_waits, e);
                            }
                        }
                    }
                    rs.clear();
                    if let Some(w) = book.written_by[slot].take() {
                        if !same_stream(w) {
                            if let Some(e) = d2h_ev[w] {
                                push_unique(&mut copy_waits, e);
                            }
                        }
                    }
                }
                book.mapped[slot] = Some(sl);
                book.copied_by[slot] = Some(c);
            }
            // Group missing slices into consecutive runs (affine windows
            // produce one run; custom window functions may leave gaps),
            // then split each run at ring-wrap boundaries.
            let mut run_start: Option<i64> = None;
            let mut prev = 0i64;
            for &sl in &missing {
                match run_start {
                    Some(_) if sl == prev + 1 => {}
                    Some(st) => {
                        runs_scratch.clear();
                        slot_runs_into(st, prev + 1, book.slots, &mut runs_scratch);
                        copy_runs.extend(runs_scratch.iter().map(|&(start, len)| (i, start, len)));
                        run_start = Some(sl);
                    }
                    None => run_start = Some(sl),
                }
                prev = sl;
            }
            if let Some(st) = run_start {
                runs_scratch.clear();
                slot_runs_into(st, prev + 1, book.slots, &mut runs_scratch);
                copy_runs.extend(runs_scratch.iter().map(|&(start, len)| (i, start, len)));
            }
            // This chunk reads all its needed slices.
            for sl in a..b {
                let slot = book.slot(sl);
                debug_assert_eq!(book.mapped[slot], Some(sl));
                book.readers[slot].push(c);
            }
        }

        // Output slots: kernel writes them, so the previous occupant's
        // D2H (and, for ToFrom, any readers) must be complete first.
        for (i, m) in region.spec.maps.iter().enumerate() {
            if !m.dir.is_output() {
                continue;
            }
            let (a, b) = table.ranges[i][c];
            let book = &mut books[i];
            for sl in a..b {
                let slot = book.slot(sl);
                match book.mapped[slot] {
                    Some(old) if old != sl => {
                        if let Some(w) = book.written_by[slot].take() {
                            if !same_stream(w) {
                                if let Some(e) = d2h_ev[w] {
                                    push_unique_cause(&mut kernel_waits, e, WaitCause::RingReuse);
                                }
                            }
                        }
                        let rs = &mut book.readers[slot];
                        for &r in rs.iter() {
                            if !same_stream(r) {
                                if let Some(e) = kernel_ev[r] {
                                    push_unique_cause(
                                        &mut kernel_waits,
                                        e,
                                        WaitCause::RingReuse,
                                    );
                                }
                            }
                        }
                        rs.clear();
                        book.copied_by[slot] = None;
                        book.mapped[slot] = Some(sl);
                    }
                    None => book.mapped[slot] = Some(sl),
                    _ => {}
                }
            }
        }

        // ---- Pass 2: enqueue ------------------------------------------
        // Eviction hazards are, by definition, ring-slot reuse stalls.
        for &e in &copy_waits {
            gpu.wait_event_with_cause(s, e, WaitCause::RingReuse)?;
        }
        let any_copies = !copy_runs.is_empty();
        for &(i, start, len) in &copy_runs {
            enqueue_h2d_ring(gpu, region, &views[i], i, start, len, s)?;
        }
        if any_copies {
            let e = gpu.create_event();
            gpu.record_event(s, e)?;
            h2d_ev[c] = Some(e);
        }

        for &(e, cause) in &kernel_waits {
            gpu.wait_event_with_cause(s, e, cause)?;
        }
        let ctx = ChunkCtx {
            k0,
            k1,
            views: views.clone(),
        };
        let mut kernel = builder(&ctx);
        // Mod-index translation adds instructions *and* address-generation
        // pressure, so both roofline terms inflate.
        let infl = 1.0 + region.spec.index_overhead;
        kernel.cost.flops = (kernel.cost.flops as f64 * infl) as u64;
        kernel.cost.bytes = (kernel.cost.bytes as f64 * infl) as u64;
        chunk_ranges.clear();
        chunk_ranges.extend((0..n_maps).map(|i| table.ranges[i][c]));
        let kernel = declare_accesses(gpu, kernel, region, &views, &chunk_ranges);
        gpu.launch(s, kernel)?;
        let ke = gpu.create_event();
        gpu.record_event(s, ke)?;
        kernel_ev[c] = Some(ke);

        let mut any_out = false;
        for (i, m) in region.spec.maps.iter().enumerate() {
            if !m.dir.is_output() {
                continue;
            }
            let (a, b) = table.ranges[i][c];
            let book = &mut books[i];
            runs_scratch.clear();
            slot_runs_into(a, b, book.slots, &mut runs_scratch);
            for &(start, len) in &runs_scratch {
                enqueue_d2h_ring(gpu, region, &views[i], i, start, len, s)?;
                any_out = true;
            }
            for sl in a..b {
                let slot = book.slot(sl);
                debug_assert_eq!(book.mapped[slot], Some(sl));
                book.written_by[slot] = Some(c);
            }
        }
        if any_out {
            let e = gpu.create_event();
            gpu.record_event(s, e)?;
            d2h_ev[c] = Some(e);
        }
        chunk_seqs.push((seq0, gpu.next_seq()));
        sample_occupancy(gpu, &books);
    }

    match recovery.filter(|r| r.policy.enabled()) {
        None => gpu.synchronize()?,
        Some(rctx) => {
            let drained = drain_with_recovery(
                gpu,
                ExecModel::PipelinedBuffer,
                region,
                rctx,
                &plan.chunks,
                &chunk_seqs,
                &dependents,
                |gpu, c| {
                    // Re-enqueue the chunk's full triplet into the *same*
                    // ring slots (the slice → slot map is static). The
                    // device is drained before each reissue, so
                    // overwriting slots that later chunks used is safe —
                    // their results are already on the host.
                    let (k0, k1) = plan.chunks[c];
                    let s = streams[chunk_stream[c]];
                    let mut n = 0u64;
                    for (i, m) in region.spec.maps.iter().enumerate() {
                        if !m.dir.is_input() {
                            continue;
                        }
                        let (a, b) = table.ranges[i][c];
                        for (start, len) in slot_runs(a, b, plan.ring_slots[i]) {
                            enqueue_h2d_ring(gpu, region, &views[i], i, start, len, s)?;
                            n += 1;
                        }
                    }
                    let ctx = ChunkCtx {
                        k0,
                        k1,
                        views: views.clone(),
                    };
                    let mut kernel = builder(&ctx);
                    let infl = 1.0 + region.spec.index_overhead;
                    kernel.cost.flops = (kernel.cost.flops as f64 * infl) as u64;
                    kernel.cost.bytes = (kernel.cost.bytes as f64 * infl) as u64;
                    let chunk_ranges: Vec<(i64, i64)> =
                        (0..n_maps).map(|i| table.ranges[i][c]).collect();
                    let kernel = declare_accesses(gpu, kernel, region, &views, &chunk_ranges);
                    gpu.launch(s, kernel)?;
                    n += 1;
                    for (i, m) in region.spec.maps.iter().enumerate() {
                        if !m.dir.is_output() {
                            continue;
                        }
                        let (a, b) = table.ranges[i][c];
                        for (start, len) in slot_runs(a, b, plan.ring_slots[i]) {
                            enqueue_d2h_ring(gpu, region, &views[i], i, start, len, s)?;
                            n += 1;
                        }
                    }
                    Ok(n)
                },
            )?;
            match drained {
                DrainResult::Clean {
                    stats,
                    retry_samples: rs,
                } => {
                    recovery_stats = stats;
                    retry_samples = rs;
                }
                DrainResult::Exhausted {
                    chunk,
                    stage,
                    attempts,
                    source,
                    open,
                    stats,
                } => {
                    recovery_stats = stats;
                    exhausted = Some((chunk, stage, attempts, source, open));
                }
            }
        }
    }
    Ok(())
    })();
    if let Err(e) = body {
        // A failed run must not bleed into whatever runs next on this
        // device: drain the in-flight work, drop its failure records, and
        // release the rings so a whole-run retry (or the caller's next
        // run) starts from a clean device.
        while gpu.synchronize().is_err() {}
        let _ = gpu.take_failures();
        for &s in &streams {
            let _ = gpu.destroy_stream(s);
        }
        for v in &views {
            let _ = gpu.free(v.base());
        }
        return Err(e);
    }

    let total = gpu.now() - t0;
    let mut report = RunReport::from_gpu(
        ExecModel::PipelinedBuffer,
        total,
        gpu,
        gpu_mem,
        plan.buffer_bytes,
        n_chunks,
        plan.num_streams,
    );
    // Report the logical workload: reissues are recovery overhead, not
    // extra work, so a recovered run matches a fault-free one.
    report.commands = report.commands.saturating_sub(recovery_stats.reissued_commands);
    report.recovery = recovery_stats;
    if gpu.timeline_enabled() {
        report.counter_tracks.push(CounterTrack {
            name: "ring_slot_occupancy".into(),
            samples: occupancy,
        });
        if !retry_samples.is_empty() {
            report.counter_tracks.push(CounterTrack {
                name: "retries_in_flight".into(),
                samples: retry_samples,
            });
        }
    }
    for s in streams {
        gpu.destroy_stream(s)?;
    }
    for v in &views {
        gpu.free(v.base())?;
    }
    match exhausted {
        None => Ok(DriverOutcome::Done(report)),
        Some((chunk, stage, attempts, source, open)) => Ok(DriverOutcome::Exhausted {
            unfinished: open.into_iter().map(|c| plan.chunks[c]).collect(),
            report,
            chunk,
            stage,
            attempts,
            source,
        }),
    }
}

/// Copy slices `[start, start+len)` of map `i` from the host array into
/// their (contiguous) ring slots.
fn enqueue_h2d_ring(
    gpu: &mut Gpu,
    region: &Region,
    view: &ArrayView,
    i: usize,
    start: i64,
    len: usize,
    stream: StreamId,
) -> RtResult<()> {
    let m = &region.spec.maps[i];
    let host = region.arrays[i];
    match &m.split {
        SplitSpec::OneD { slice_elems, .. } => {
            gpu.memcpy_h2d_async(
                stream,
                host,
                start as usize * slice_elems,
                view.slice_ptr(start),
                len * slice_elems,
            )?;
        }
        SplitSpec::ColBlocks {
            rows,
            block_cols,
            row_stride,
            ..
        } => {
            let (dev, stride) = view.block_ptr(start);
            gpu.memcpy2d_h2d_async(
                stream,
                Copy2D {
                    rows: *rows,
                    row_elems: len * block_cols,
                    host,
                    host_off: start as usize * block_cols,
                    host_stride: *row_stride,
                    dev,
                    dev_stride: stride,
                },
            )?;
        }
    }
    Ok(())
}

/// Copy slices `[start, start+len)` of map `i` from their ring slots back
/// to the host array.
fn enqueue_d2h_ring(
    gpu: &mut Gpu,
    region: &Region,
    view: &ArrayView,
    i: usize,
    start: i64,
    len: usize,
    stream: StreamId,
) -> RtResult<()> {
    let m = &region.spec.maps[i];
    let host = region.arrays[i];
    match &m.split {
        SplitSpec::OneD { slice_elems, .. } => {
            gpu.memcpy_d2h_async(
                stream,
                view.slice_ptr(start),
                len * slice_elems,
                host,
                start as usize * slice_elems,
            )?;
        }
        SplitSpec::ColBlocks {
            rows,
            block_cols,
            row_stride,
            ..
        } => {
            let (dev, stride) = view.block_ptr(start);
            gpu.memcpy2d_d2h_async(
                stream,
                Copy2D {
                    rows: *rows,
                    row_elems: len * block_cols,
                    host,
                    host_off: start as usize * block_cols,
                    host_stride: *row_stride,
                    dev,
                    dev_stride: stride,
                },
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_runs_split_at_wrap() {
        // Slices 3..9 in a 4-slot ring: slots 3 | 0 1 2 3 | 0.
        assert_eq!(slot_runs(3, 9, 4), vec![(3, 1), (4, 4), (8, 1)]);
        // Fully inside one revolution.
        assert_eq!(slot_runs(4, 7, 8), vec![(4, 3)]);
        // Empty range.
        assert!(slot_runs(5, 5, 4).is_empty());
        // Exact revolutions.
        assert_eq!(slot_runs(0, 8, 4), vec![(0, 4), (4, 4)]);
    }

    #[test]
    fn push_unique_dedupes() {
        let mut v = Vec::new();
        let e = EventId_for_test(3);
        push_unique(&mut v, e);
        push_unique(&mut v, e);
        assert_eq!(v.len(), 1);
    }

    // EventId's field is crate-private to gpsim; create through a Gpu.
    #[allow(non_snake_case)]
    fn EventId_for_test(n: usize) -> EventId {
        let mut g = Gpu::new(gpsim::DeviceProfile::uniform_test(), gpsim::ExecMode::Timing)
            .unwrap();
        let mut last = g.create_event();
        for _ in 0..n {
            last = g.create_event();
        }
        last
    }
}

//! Per-run measurement reports.

use std::fmt;

use gpsim::{attribute_stalls, inflight_counter, CounterTrack, Gpu, SimTime, StallReport};

use crate::metrics::StageMetrics;
use crate::recovery::RecoveryStats;

/// The three execution models compared throughout the paper's evaluation,
/// plus [`Auto`](ExecModel::Auto), which lets the runtime pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// Synchronous copy-in → kernel → copy-out; whole arrays resident.
    Naive,
    /// Hand-style pipelining: chunked async copies + kernels over multiple
    /// streams, full-size device arrays, no index rewriting.
    Pipelined,
    /// The paper's contribution: pipelining into a small pre-allocated
    /// ring buffer with mod-indexing.
    PipelinedBuffer,
    /// Let the runtime autotune a schedule and run the buffered model
    /// with it (reports never carry `Auto`: they name the model that
    /// actually ran).
    Auto,
}

impl fmt::Display for ExecModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecModel::Naive => "Naive",
            ExecModel::Pipelined => "Pipelined",
            ExecModel::PipelinedBuffer => "Pipelined-buffer",
            ExecModel::Auto => "Auto",
        };
        f.write_str(s)
    }
}

/// Measurements of one region execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which execution model produced this report.
    pub model: ExecModel,
    /// End-to-end time of the region on the host clock (the paper's
    /// metric: "the function that contains the GPU operations, including
    /// all transfers").
    pub total: SimTime,
    /// Busy time of the host→device copy engine.
    pub h2d: SimTime,
    /// Busy time of the device→host copy engine.
    pub d2h: SimTime,
    /// Busy time of the compute engine.
    pub kernel: SimTime,
    /// Host time inside driver API calls and runtime bookkeeping.
    pub host_api: SimTime,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Device memory in use while the region ran (arrays/buffers plus
    /// runtime and stream overhead — what `nvidia-smi` would report).
    pub gpu_mem_bytes: u64,
    /// Device bytes allocated specifically for this region's arrays or
    /// ring buffers.
    pub array_bytes: u64,
    /// Number of sub-task chunks executed.
    pub chunks: usize,
    /// Number of streams used.
    pub streams: usize,
    /// Device commands the run executed (copies + kernels) — the DES
    /// workload size behind the timings, used by throughput reporting.
    pub commands: u64,
    /// Where each engine's idle time within the makespan went (per
    /// engine, busy + stall buckets sum to the makespan exactly).
    pub stalls: StallReport,
    /// Per-chunk latency histograms per pipeline stage.
    pub stage_metrics: StageMetrics,
    /// Counter series for trace export (device memory footprint,
    /// in-flight chunks, ring-slot occupancy for the buffered model).
    /// Empty when timeline recording is off.
    pub counter_tracks: Vec<CounterTrack>,
    /// What recovery cost this run: retries, reissued commands, backoff
    /// time, degradations. All-zero for clean runs.
    pub recovery: RecoveryStats,
    /// Commands whose duration was stretched by an injected latency
    /// spike ([`FaultPlan::spikes`](gpsim::FaultPlan::spikes)) — lets
    /// straggler tests assert injection actually happened.
    pub spikes: u64,
    /// Whether this run replayed a cached [`CompiledPlan`](crate::CompiledPlan)
    /// instead of planning from scratch (the host-runtime fast path).
    pub plan_reused: bool,
}

impl RunReport {
    /// Build a report from the context's counters and observability
    /// records, as accumulated since the last `reset_counters`.
    pub(crate) fn from_gpu(
        model: ExecModel,
        total: SimTime,
        gpu: &Gpu,
        gpu_mem_bytes: u64,
        array_bytes: u64,
        chunks: usize,
        streams: usize,
    ) -> RunReport {
        let c = gpu.counters();
        let timeline = gpu.timeline();
        let waits = gpu.wait_records();
        let counter_tracks = if gpu.timeline_enabled() {
            vec![
                CounterTrack {
                    name: "device_mem_bytes".into(),
                    samples: gpu
                        .mem_samples()
                        .iter()
                        .map(|&(t, b)| (t, b as f64))
                        .collect(),
                },
                inflight_counter(timeline),
            ]
        } else {
            Vec::new()
        };
        RunReport {
            model,
            total,
            h2d: c.h2d_time,
            d2h: c.d2h_time,
            kernel: c.kernel_time,
            host_api: c.host_api_time,
            h2d_bytes: c.h2d_bytes,
            d2h_bytes: c.d2h_bytes,
            gpu_mem_bytes,
            array_bytes,
            chunks,
            streams,
            commands: c.h2d_count + c.d2h_count + c.kernel_count,
            stalls: attribute_stalls(timeline, waits),
            stage_metrics: StageMetrics::from_run(timeline, waits),
            counter_tracks,
            recovery: RecoveryStats::default(),
            spikes: c.spikes,
            plan_reused: false,
        }
    }

    /// Speedup of `self` relative to a baseline run (`baseline.total /
    /// self.total`).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.total.is_zero() {
            return f64::INFINITY;
        }
        baseline.total.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Memory saving of `self` relative to a baseline run, as a fraction
    /// in `[0, 1]` (the paper reports 0.52–0.97).
    pub fn mem_saving_over(&self, baseline: &RunReport) -> f64 {
        if baseline.gpu_mem_bytes == 0 {
            return 0.0;
        }
        1.0 - self.gpu_mem_bytes as f64 / baseline.gpu_mem_bytes as f64
    }

    /// Merge a later slice of the same logical run into this report:
    /// times and byte counts add, memory footprints max, histograms and
    /// recovery accounting merge, counter tracks append by name. Used by
    /// the multi-device supervisor to stitch per-slice reports into a
    /// per-device one, and by [`crate::ResumableRun`] to accumulate a
    /// job-level report across preemptions.
    pub fn merge_slice(&mut self, r: &RunReport) {
        self.total += r.total;
        self.h2d += r.h2d;
        self.d2h += r.d2h;
        self.kernel += r.kernel;
        self.host_api += r.host_api;
        self.h2d_bytes += r.h2d_bytes;
        self.d2h_bytes += r.d2h_bytes;
        self.gpu_mem_bytes = self.gpu_mem_bytes.max(r.gpu_mem_bytes);
        self.array_bytes = self.array_bytes.max(r.array_bytes);
        self.chunks += r.chunks;
        self.streams = self.streams.max(r.streams);
        self.commands += r.commands;
        self.spikes += r.spikes;
        self.stage_metrics.merge(&r.stage_metrics);
        self.recovery.merge(&r.recovery);
        for t in &r.counter_tracks {
            if let Some(existing) = self.counter_tracks.iter_mut().find(|e| e.name == t.name) {
                existing.samples.extend_from_slice(&t.samples);
            } else {
                self.counter_tracks.push(t.clone());
            }
        }
    }

    /// Fraction of busy time spent in transfers (Figure 3's motivation:
    /// ~50 % for naive Lattice QCD).
    pub fn transfer_fraction(&self) -> f64 {
        let busy = (self.h2d + self.d2h + self.kernel).as_ns();
        if busy == 0 {
            return 0.0;
        }
        (self.h2d + self.d2h).as_ns() as f64 / busy as f64
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<17} total={:>10} h2d={:>10} d2h={:>10} kernel={:>10} mem={:>7.1} MB chunks={} streams={}",
            self.model.to_string(),
            self.total.to_string(),
            self.h2d.to_string(),
            self.d2h.to_string(),
            self.kernel.to_string(),
            self.gpu_mem_bytes as f64 / 1e6,
            self.chunks,
            self.streams,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_ms: u64, mem: u64) -> RunReport {
        RunReport {
            model: ExecModel::Naive,
            total: SimTime::from_ms(total_ms),
            h2d: SimTime::from_ms(3),
            d2h: SimTime::from_ms(2),
            kernel: SimTime::from_ms(5),
            host_api: SimTime::ZERO,
            h2d_bytes: 0,
            d2h_bytes: 0,
            gpu_mem_bytes: mem,
            array_bytes: mem,
            chunks: 1,
            streams: 1,
            commands: 10,
            stalls: StallReport::default(),
            stage_metrics: StageMetrics::default(),
            counter_tracks: Vec::new(),
            recovery: RecoveryStats::default(),
            spikes: 0,
            plan_reused: false,
        }
    }

    #[test]
    fn speedup_and_saving() {
        let naive = report(100, 1000);
        let fast = report(50, 100);
        assert!((fast.speedup_over(&naive) - 2.0).abs() < 1e-12);
        assert!((fast.mem_saving_over(&naive) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn transfer_fraction_matches_phases() {
        let r = report(10, 1);
        assert!((r.transfer_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_model() {
        assert!(report(1, 1).to_string().contains("Naive"));
        assert_eq!(ExecModel::PipelinedBuffer.to_string(), "Pipelined-buffer");
    }
}

//! Preemptible execution: run a region in caller-sized slices that can
//! be suspended and resumed — on the same device or another one sharing
//! the host pool — with results bit-identical to an uninterrupted run.
//!
//! This is the core primitive behind the multi-tenant job server
//! (`pipeline-serve`): a scheduler gives a job a time slice, runs a
//! bounded iteration range through the same degradation-ladder path as
//! [`run_model`](crate::run_model), and requeues the rest. Correctness
//! rests on two properties the runtime already enforces elsewhere:
//!
//! * Output maps whose windows stay within their stride write disjoint
//!   host slices per iteration sub-range (the same rule that makes
//!   multi-device partitioning deterministic — see
//!   [`run_model_multi`](crate::run_model_multi)), so executing the
//!   sub-ranges in sequence is indistinguishable from one run.
//! * The [`ToFromSnapshot`] checkpoint from the failover path restores a
//!   failed slice's `ToFrom` windows to their pre-run contents, so a
//!   slice that dies mid-flight can be re-dispatched cleanly elsewhere.

use gpsim::Gpu;

use crate::error::{RtError, RtResult};
use crate::exec::{KernelBuilder, Region};
use crate::multi::validate_sliceable;
use crate::recovery::ToFromSnapshot;
use crate::report::{ExecModel, RunReport};
use crate::run::{run_ladder, RunOptions};

/// A region execution that can be carried out in increments.
///
/// Create one with [`ResumableRun::new`], then call
/// [`run_slice`](ResumableRun::run_slice) until it reports completion.
/// Between slices the run holds no device state at all — everything
/// lives in the host arrays — so consecutive slices may run on
/// different devices, as long as they share the host pool the region's
/// arrays were allocated from.
pub struct ResumableRun {
    region: Region,
    cursor: i64,
    completed: Vec<(i64, i64)>,
    snapshot: ToFromSnapshot,
    report: Option<RunReport>,
    slices: usize,
    failed_slices: usize,
}

impl ResumableRun {
    /// Prepare a region for sliced execution.
    ///
    /// Rejects regions whose output maps write overlapping host slices
    /// across iteration sub-ranges (the result would then depend on the
    /// slice schedule), and checkpoints the `ToFrom` host windows so a
    /// failed slice can be rolled back.
    pub fn new(gpu: &Gpu, region: &Region) -> RtResult<ResumableRun> {
        validate_sliceable(region)?;
        let snapshot = ToFromSnapshot::take(gpu, region)?;
        Ok(ResumableRun {
            region: region.clone(),
            cursor: region.lo,
            completed: Vec::new(),
            snapshot,
            report: None,
            slices: 0,
            failed_slices: 0,
        })
    }

    /// Run the next at-most-`max_iters` iterations on `gpu`.
    ///
    /// Returns `Ok(Some(report))` for the slice just executed, or
    /// `Ok(None)` when the region was already finished. On error the
    /// slice's `ToFrom` windows are restored from the checkpoint before
    /// the error propagates, so the job can be retried (here or on
    /// another device) without seeing half-written state.
    ///
    /// [`ExecModel::Auto`] is resolved to
    /// [`ExecModel::PipelinedBuffer`]: per-slice autotuning would let
    /// the slice schedule influence chunking and defeat bit-identity
    /// with the uninterrupted run.
    ///
    /// [`ExecModel::Naive`] is accepted only for a slice covering the
    /// *entire* region — no partial slice, and no resuming a job that
    /// already made progress under another model: the naive driver
    /// stages *whole* arrays and copies every output back in full, so
    /// either case would overwrite host slices computed by earlier
    /// slices with untouched device memory. Naive jobs are effectively
    /// non-preemptible — they have no chunk boundary to stop at.
    pub fn run_slice(
        &mut self,
        gpu: &mut Gpu,
        builder: &KernelBuilder<'_>,
        model: ExecModel,
        opts: &RunOptions,
        max_iters: i64,
    ) -> RtResult<Option<RunReport>> {
        if self.is_done() {
            return Ok(None);
        }
        if max_iters <= 0 {
            return Err(RtError::Spec("slice must cover at least one iteration".into()));
        }
        let model = match model {
            ExecModel::Auto => ExecModel::PipelinedBuffer,
            m => m,
        };
        let k0 = self.cursor;
        let k1 = k0.saturating_add(max_iters).min(self.region.hi);
        if model == ExecModel::Naive && (k0 > self.region.lo || k1 < self.region.hi) {
            return Err(RtError::Spec(
                "the naive model stages and writes back whole arrays, so it cannot run \
                 a partial slice or resume past a checkpoint; it must cover the entire \
                 region in one slice"
                    .into(),
            ));
        }
        let sub = Region::new(self.region.spec.clone(), k0, k1, self.region.arrays.clone());
        match run_ladder(gpu, &sub, builder, model, opts, false) {
            Ok(report) => {
                self.cursor = k1;
                self.completed.push((k0, k1));
                self.slices += 1;
                match &mut self.report {
                    Some(agg) => agg.merge_slice(&report),
                    None => self.report = Some(report.clone()),
                }
                Ok(Some(report))
            }
            Err(e) => {
                self.failed_slices += 1;
                self.snapshot.restore_window(gpu, &self.region, k0, k1)?;
                Err(e)
            }
        }
    }

    /// True once every iteration of the region has run.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.region.hi
    }

    /// First iteration the next slice would execute.
    pub fn cursor(&self) -> i64 {
        self.cursor
    }

    /// Iterations still to run.
    pub fn remaining(&self) -> i64 {
        self.region.hi - self.cursor
    }

    /// Slices executed so far.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Slices that errored out and were rolled back (device faults,
    /// losses, hang escalations). The cursor never advances past a
    /// failed slice, so these are re-dispatchable — the job server uses
    /// this count for its failover accounting.
    pub fn failed_slices(&self) -> usize {
        self.failed_slices
    }

    /// Iteration ranges completed so far, in execution order. They are
    /// contiguous and tile `[region.lo, cursor)` exactly.
    pub fn completed(&self) -> &[(i64, i64)] {
        &self.completed
    }

    /// Consume the run and produce the job-level report.
    ///
    /// Errors if the region is not fully executed yet — a partial
    /// report would silently undercount the job.
    pub fn finish(self) -> RtResult<JobReport> {
        if !self.is_done() {
            return Err(RtError::Spec(format!(
                "job unfinished: {} of {} iterations remain",
                self.remaining(),
                self.region.hi - self.region.lo,
            )));
        }
        Ok(JobReport {
            report: self.report.expect("done implies at least one slice"),
            slices: self.slices,
            completed: self.completed,
        })
    }
}

/// Aggregate accounting of one job executed through [`ResumableRun`]:
/// the per-slice [`RunReport`]s stitched together the same way the
/// multi-device supervisor stitches per-slice device reports.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Merged report: times and byte counts summed over slices, memory
    /// footprints maxed, stage histograms and recovery accounting
    /// merged.
    pub report: RunReport,
    /// Number of slices the job ran in (1 = never preempted).
    pub slices: usize,
    /// The slice ranges in execution order; they tile the region
    /// exactly.
    pub completed: Vec<(i64, i64)>,
}

impl JobReport {
    /// Preemption count: slice boundaries beyond the first slice.
    pub fn preemptions(&self) -> usize {
        self.slices.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Affine, MapDir, MapSpec, RegionSpec, Schedule, SplitSpec};
    use gpsim::{DeviceProfile, ExecMode, KernelCost, KernelLaunch};

    fn window_region(gpu: &mut Gpu, nz: usize, slice: usize) -> (Region, gpsim::HostBufId) {
        let input = gpu.alloc_host(nz * slice, true).unwrap();
        let output = gpu.alloc_host(nz * slice, true).unwrap();
        gpu.host_fill(input, |i| (i % 97) as f32).unwrap();
        gpu.host_fill(output, |_| 0.0).unwrap();
        let spec = RegionSpec::new(Schedule::static_(2, 2))
            .with_map(MapSpec {
                name: "in".into(),
                dir: MapDir::To,
                split: SplitSpec::OneD {
                    offset: Affine::shifted(-1),
                    window: 3,
                    extent: nz,
                    slice_elems: slice,
                },
            })
            .with_map(MapSpec {
                name: "out".into(),
                dir: MapDir::From,
                split: SplitSpec::OneD {
                    offset: Affine::IDENTITY,
                    window: 1,
                    extent: nz,
                    slice_elems: slice,
                },
            });
        let region = Region::new(spec, 1, (nz - 1) as i64, vec![input, output]);
        (region, output)
    }

    fn sum3(slice: usize) -> impl Fn(&crate::view::ChunkCtx) -> KernelLaunch + 'static {
        move |ctx: &crate::view::ChunkCtx| {
            let (k0, k1) = (ctx.k0, ctx.k1);
            let (vin, vout) = (ctx.view(0), ctx.view(1));
            KernelLaunch::new(
                "sum3",
                KernelCost {
                    flops: (k1 - k0) as u64 * slice as u64 * 3,
                    bytes: 0,
                },
                move |kc| {
                    for k in k0..k1 {
                        let up = kc.read(vin.slice_ptr(k - 1), slice)?;
                        let mid = kc.read(vin.slice_ptr(k), slice)?;
                        let dn = kc.read(vin.slice_ptr(k + 1), slice)?;
                        let mut out = kc.write(vout.slice_ptr(k), slice)?;
                        for i in 0..slice {
                            out[i] = up[i] + mid[i] + dn[i];
                        }
                    }
                    Ok(())
                },
            )
        }
    }

    #[test]
    fn sliced_run_matches_uninterrupted() {
        let (nz, slice) = (24usize, 16usize);

        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let (region, output) = window_region(&mut gpu, nz, slice);
        let builder = sum3(slice);
        let opts = RunOptions::default();
        let whole = crate::run::run_model(
            &mut gpu,
            &region,
            &|c| builder(c),
            ExecModel::PipelinedBuffer,
            &opts,
        )
        .unwrap();
        let mut want = vec![0.0f32; nz * slice];
        gpu.host_read(output, 0, &mut want).unwrap();

        let mut gpu2 = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let (region2, output2) = window_region(&mut gpu2, nz, slice);
        let mut run = ResumableRun::new(&gpu2, &region2).unwrap();
        let mut lens = [3i64, 1, 7, 2].iter().cycle();
        while !run.is_done() {
            let n = *lens.next().unwrap();
            run.run_slice(&mut gpu2, &|c| builder(c), ExecModel::PipelinedBuffer, &opts, n)
                .unwrap()
                .expect("not done yet");
        }
        let mut got = vec![0.0f32; nz * slice];
        gpu2.host_read(output2, 0, &mut got).unwrap();
        assert_eq!(want, got, "sliced run must be bit-identical");
        assert!(whole.chunks >= 1);

        let job = run.finish().unwrap();
        assert!(job.slices >= 4);
        assert_eq!(job.preemptions(), job.slices - 1);
        assert_eq!(job.completed.first().unwrap().0, region2.lo);
        assert_eq!(job.completed.last().unwrap().1, region2.hi);
        for w in job.completed.windows(2) {
            assert_eq!(w[0].1, w[1].0, "slices must tile contiguously");
        }
        assert!(job.report.chunks >= job.slices);
    }

    #[test]
    fn overlapping_output_windows_are_rejected() {
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let out = gpu.alloc_host(8 * 4, true).unwrap();
        let spec = RegionSpec::new(Schedule::static_(1, 2)).with_map(MapSpec {
            name: "out".into(),
            dir: MapDir::From,
            split: SplitSpec::OneD {
                offset: Affine::IDENTITY,
                window: 2,
                extent: 8,
                slice_elems: 4,
            },
        });
        let region = Region::new(spec, 0, 6, vec![out]);
        assert!(matches!(
            ResumableRun::new(&gpu, &region),
            Err(RtError::Spec(_))
        ));
    }

    #[test]
    fn naive_accepts_only_a_full_slice() {
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let (region, output) = window_region(&mut gpu, 16, 8);
        let builder = sum3(8);
        let opts = RunOptions::default();
        let mut run = ResumableRun::new(&gpu, &region).unwrap();
        // A partial naive slice would clobber host output slices on its
        // full-array write-back; it must be refused up front.
        assert!(matches!(
            run.run_slice(&mut gpu, &|c| builder(c), ExecModel::Naive, &opts, 3),
            Err(RtError::Spec(_))
        ));
        // The full remaining range is fine and completes the job.
        run.run_slice(&mut gpu, &|c| builder(c), ExecModel::Naive, &opts, i64::MAX)
            .unwrap()
            .expect("not done yet");
        assert!(run.is_done());

        let mut got = vec![0.0f32; 16 * 8];
        gpu.host_read(output, 0, &mut got).unwrap();
        let mut gpu2 = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let (region2, output2) = window_region(&mut gpu2, 16, 8);
        crate::run::run_model(&mut gpu2, &region2, &|c| builder(c), ExecModel::Naive, &opts)
            .unwrap();
        let mut want = vec![0.0f32; 16 * 8];
        gpu2.host_read(output2, 0, &mut want).unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn finish_before_done_errors() {
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let (region, _) = window_region(&mut gpu, 16, 8);
        let builder = sum3(8);
        let mut run = ResumableRun::new(&gpu, &region).unwrap();
        run.run_slice(
            &mut gpu,
            &|c| builder(c),
            ExecModel::PipelinedBuffer,
            &RunOptions::default(),
            3,
        )
        .unwrap();
        assert!(!run.is_done());
        assert!(run.finish().is_err());
    }
}

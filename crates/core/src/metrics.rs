//! Per-chunk latency metrics: a dependency-free log2-bucket histogram,
//! recorded per pipeline stage and mergeable across sweep trials.
//!
//! The paper reports only end-to-end times; per-chunk latency quantiles
//! (p50/p95/max per stage) are what a production runtime would watch to
//! catch a mis-sized ring buffer or a stage that stopped overlapping.
//! Buckets are powers of two in nanoseconds, so merging histograms from
//! parallel sweep trials is exact and order-independent.

use gpsim::{TimelineEntry, TimelineKind, WaitCause, WaitRecord};

/// A log2-bucket latency histogram over nanosecond durations.
///
/// Bucket `i` holds durations `d` with `floor(log2(d)) == i` (bucket 0
/// also holds `d == 0`). Quantiles are reported as the upper bound of
/// the bucket containing the quantile rank — at most 2× off, which is
/// plenty for "did p95 explode" questions — except `max`, which is
/// exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        let b = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded duration (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Fold another histogram into this one (exact and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Upper bound (ns) of the bucket containing quantile `q` in
    /// `[0, 1]`; 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) - 1, capped by the
                // exact max.
                let hi = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return hi.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median latency (bucket upper bound).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency (bucket upper bound).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }
}

/// Pipeline stages with per-chunk latency distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Host→device chunk copies.
    H2d,
    /// Chunk kernel executions.
    Kernel,
    /// Device→host chunk copies.
    D2h,
    /// Ring-slot reuse stalls (buffer too small to run ahead).
    SlotWait,
}

impl Stage {
    /// All stages, in reporting order.
    pub const ALL: [Stage; 4] = [Stage::H2d, Stage::Kernel, Stage::D2h, Stage::SlotWait];

    /// Stable lowercase name for JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            Stage::H2d => "h2d",
            Stage::Kernel => "kernel",
            Stage::D2h => "d2h",
            Stage::SlotWait => "slot_wait",
        }
    }
}

/// Per-stage latency histograms for one run (or many merged runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Host→device per-chunk copy latency.
    pub h2d: Histogram,
    /// Per-chunk kernel latency.
    pub kernel: Histogram,
    /// Device→host per-chunk copy latency.
    pub d2h: Histogram,
    /// Ring-slot wait latency (only non-empty for the buffered model).
    pub slot_wait: Histogram,
}

impl StageMetrics {
    /// Build per-stage histograms from one run's device timeline and
    /// wait records.
    pub fn from_run(timeline: &[TimelineEntry], waits: &[WaitRecord]) -> StageMetrics {
        let mut m = StageMetrics::default();
        for t in timeline {
            let d = t.end_ns - t.start_ns;
            match t.kind {
                TimelineKind::H2D => m.h2d.record(d),
                TimelineKind::D2H => m.d2h.record(d),
                TimelineKind::Kernel => m.kernel.record(d),
            }
        }
        for w in waits {
            if w.cause == WaitCause::RingReuse {
                m.slot_wait.record(w.until_ns - w.from_ns);
            }
        }
        m
    }

    /// Histogram for one stage.
    pub fn stage(&self, s: Stage) -> &Histogram {
        match s {
            Stage::H2d => &self.h2d,
            Stage::Kernel => &self.kernel,
            Stage::D2h => &self.d2h,
            Stage::SlotWait => &self.slot_wait,
        }
    }

    /// Fold another run's metrics into this aggregate.
    pub fn merge(&mut self, other: &StageMetrics) {
        self.h2d.merge(&other.h2d);
        self.kernel.merge(&other.kernel);
        self.d2h.merge(&other.d2h);
        self.slot_wait.merge(&other.slot_wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_quantiles() {
        let mut h = Histogram::default();
        for ns in [1, 2, 3, 100, 1000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 1000);
        // p50 rank 3 → value 3 lives in bucket 1 ([2,3]) → upper bound 3.
        assert_eq!(h.p50_ns(), 3);
        // p95 rank 5 → bucket of 1000 ([512,1023]), capped by max.
        assert_eq!(h.p95_ns(), 1000);
        assert_eq!(Histogram::default().p95_ns(), 0);
    }

    #[test]
    fn zero_duration_is_representable() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.p50_ns(), 0);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for (i, ns) in [5u64, 17, 80, 3000, 9, 250].iter().enumerate() {
            if i % 2 == 0 { a.record(*ns) } else { b.record(*ns) }
            all.record(*ns);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, all);
    }

    #[test]
    fn stage_metrics_classify_by_kind_and_cause() {
        let entry = |kind, start: u64, end: u64| TimelineEntry {
            label: "x".into(),
            kind,
            stream: 0,
            start_ns: start,
            end_ns: end,
            seq: 0,
            enqueue_ns: start,
        };
        let tl = vec![
            entry(TimelineKind::H2D, 0, 10),
            entry(TimelineKind::Kernel, 10, 40),
            entry(TimelineKind::D2H, 40, 45),
        ];
        let waits = vec![
            WaitRecord {
                stream: 0,
                cause: WaitCause::RingReuse,
                from_ns: 5,
                until_ns: 9,
            },
            WaitRecord {
                stream: 1,
                cause: WaitCause::Dependency,
                from_ns: 0,
                until_ns: 100,
            },
        ];
        let m = StageMetrics::from_run(&tl, &waits);
        assert_eq!(m.h2d.count(), 1);
        assert_eq!(m.kernel.count(), 1);
        assert_eq!(m.d2h.count(), 1);
        // Only the ring-reuse wait is a slot wait.
        assert_eq!(m.slot_wait.count(), 1);
        assert_eq!(m.slot_wait.max_ns(), 4);
        assert_eq!(m.stage(Stage::Kernel).max_ns(), 30);
    }
}

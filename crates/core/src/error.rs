//! Runtime error type.

use std::fmt;

use gpsim::SimError;

/// Errors from the partitioning/pipelining runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// The region specification is inconsistent.
    Spec(String),
    /// The memory limit cannot be met even with the smallest schedule.
    MemLimitInfeasible {
        /// Requested ceiling in bytes.
        limit: u64,
        /// Smallest achievable footprint in bytes.
        needed: u64,
    },
    /// An underlying device/simulator failure.
    Sim(SimError),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Spec(s) => write!(f, "invalid region spec: {s}"),
            RtError::MemLimitInfeasible { limit, needed } => write!(
                f,
                "pipeline_mem_limit({limit} B) infeasible: minimum footprint is {needed} B"
            ),
            RtError::Sim(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RtError {
    fn from(e: SimError) -> Self {
        RtError::Sim(e)
    }
}

/// Result alias for runtime operations.
pub type RtResult<T> = Result<T, RtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: RtError = SimError::Deadlock("x".into()).into();
        assert!(e.to_string().contains("device error"));
        let e = RtError::MemLimitInfeasible {
            limit: 10,
            needed: 20,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("20"));
    }
}

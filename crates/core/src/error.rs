//! Runtime error type.

use std::fmt;

use gpsim::{FaultStage, SimError};

use crate::report::ExecModel;

/// Errors from the partitioning/pipelining runtime.
///
/// Marked `#[non_exhaustive]`: the fault-tolerance layer grows structured
/// variants over time, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// The region specification is inconsistent.
    Spec(String),
    /// The memory limit cannot be met even with the smallest schedule.
    MemLimitInfeasible {
        /// Requested ceiling in bytes.
        limit: u64,
        /// Smallest achievable footprint in bytes.
        needed: u64,
    },
    /// An underlying device/simulator failure.
    Sim(SimError),
    /// A device command failed inside a specific chunk and the retry
    /// policy classified it as fatal (non-retryable stage, or a genuine
    /// simulator error rather than an injected fault).
    Device {
        /// Execution model that was running.
        model: ExecModel,
        /// Chunk index whose command failed.
        chunk: usize,
        /// Pipeline stage of the failing command.
        stage: FaultStage,
        /// The underlying device error.
        source: SimError,
    },
    /// A chunk kept failing until its retry budget ran out (and
    /// degradation was disabled or also failed).
    RetriesExhausted {
        /// Execution model that gave up.
        model: ExecModel,
        /// Chunk index that exhausted its budget.
        chunk: usize,
        /// Stage of the last failure.
        stage: FaultStage,
        /// Retry attempts consumed.
        attempts: u32,
        /// The last underlying error.
        source: SimError,
    },
    /// A degradation step itself failed; reports the rung that was being
    /// taken when the run died.
    Degraded {
        /// Model that was abandoned.
        from: ExecModel,
        /// Fallback model that then failed too.
        to: ExecModel,
        /// Why the ladder was descended.
        reason: String,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Spec(s) => write!(f, "invalid region spec: {s}"),
            RtError::MemLimitInfeasible { limit, needed } => write!(
                f,
                "pipeline_mem_limit({limit} B) infeasible: minimum footprint is {needed} B"
            ),
            RtError::Sim(e) => write!(f, "device error: {e}"),
            RtError::Device {
                model,
                chunk,
                stage,
                source,
            } => write!(
                f,
                "device error in {model} chunk {chunk} ({stage} stage): {source}"
            ),
            RtError::RetriesExhausted {
                model,
                chunk,
                stage,
                attempts,
                source,
            } => write!(
                f,
                "{model} chunk {chunk} failed {attempts} retries ({stage} stage): {source}"
            ),
            RtError::Degraded { from, to, reason } => {
                write!(f, "degradation {from} -> {to} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Sim(e) => Some(e),
            RtError::Device { source, .. } | RtError::RetriesExhausted { source, .. } => {
                Some(source)
            }
            _ => None,
        }
    }
}

impl From<SimError> for RtError {
    fn from(e: SimError) -> Self {
        RtError::Sim(e)
    }
}

/// Result alias for runtime operations.
pub type RtResult<T> = Result<T, RtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: RtError = SimError::Deadlock("x".into()).into();
        assert!(e.to_string().contains("device error"));
        let e = RtError::MemLimitInfeasible {
            limit: 10,
            needed: 20,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("20"));
    }

    #[test]
    fn structured_variants_name_their_context() {
        let source = SimError::Injected {
            stage: FaultStage::H2d,
            occurrence: 7,
        };
        let e = RtError::Device {
            model: ExecModel::PipelinedBuffer,
            chunk: 3,
            stage: FaultStage::H2d,
            source: source.clone(),
        };
        let s = e.to_string();
        assert!(s.contains("chunk 3") && s.contains("h2d"), "{s}");
        assert!(std::error::Error::source(&e).is_some());

        let e = RtError::RetriesExhausted {
            model: ExecModel::Pipelined,
            chunk: 1,
            stage: FaultStage::Kernel,
            attempts: 4,
            source,
        };
        let s = e.to_string();
        assert!(s.contains("failed 4 retries") && s.contains("kernel"), "{s}");

        let e = RtError::Degraded {
            from: ExecModel::PipelinedBuffer,
            to: ExecModel::Pipelined,
            reason: "oom".into(),
        };
        assert!(e.to_string().contains("Pipelined-buffer"));
    }
}

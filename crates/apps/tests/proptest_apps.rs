//! Property tests at the application level: random problem shapes and
//! schedules through the *directive* front end must match the CPU
//! references for every execution model.

use gpsim::{DeviceProfile, ExecMode, Gpu};
use pipeline_apps::util::{assert_exact, max_rel_error, read_host};
use pipeline_apps::{Conv3dConfig, MatmulConfig, StencilConfig};
use pipeline_rt::{run_naive, run_pipelined, run_pipelined_buffer};
use proptest::prelude::*;

fn gpu() -> Gpu {
    Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stencil_random_shapes_and_schedules(
        nx in 3usize..14,
        ny in 3usize..14,
        nz in 3usize..20,
        chunk in 1usize..6,
        streams in 1usize..5,
    ) {
        let cfg = StencilConfig {
            nx, ny, nz,
            c0: 0.25,
            c1: 0.125,
            chunk,
            streams,
        };
        let mut gpu = gpu();
        gpu.set_race_check(true);
        let inst = cfg.setup(&mut gpu).unwrap();
        let a0 = read_host(&gpu, inst.a0).unwrap();
        let expect = cfg.cpu_reference(&a0);
        let builder = cfg.builder();

        run_naive(&mut gpu, &inst.region, &builder).unwrap();
        let naive_out = read_host(&gpu, inst.anext).unwrap();
        gpu.host_fill(inst.anext, |_| 0.0).unwrap();
        run_pipelined(&mut gpu, &inst.region, &builder).unwrap();
        let pipe_out = read_host(&gpu, inst.anext).unwrap();
        gpu.host_fill(inst.anext, |_| 0.0).unwrap();
        run_pipelined_buffer(&mut gpu, &inst.region, &builder).unwrap();
        let buf_out = read_host(&gpu, inst.anext).unwrap();

        // Interior planes only — the boundary planes are never written.
        let plane = cfg.plane();
        let interior = plane..(nz - 1) * plane;
        assert_exact(&naive_out[interior.clone()], &expect[interior.clone()], "naive");
        assert_exact(&pipe_out[interior.clone()], &expect[interior.clone()], "pipelined");
        assert_exact(&buf_out[interior.clone()], &expect[interior], "buffer");
    }

    #[test]
    fn conv3d_random_shapes(
        ni in 3usize..12,
        nj in 3usize..12,
        nk in 3usize..16,
        chunk in 1usize..5,
        streams in 1usize..4,
    ) {
        let cfg = Conv3dConfig { ni, nj, nk, chunk, streams };
        let mut gpu = gpu();
        let inst = cfg.setup(&mut gpu).unwrap();
        let a = read_host(&gpu, inst.a).unwrap();
        let expect = cfg.cpu_reference(&a);
        let builder = cfg.builder();
        run_pipelined_buffer(&mut gpu, &inst.region, &builder).unwrap();
        let got = read_host(&gpu, inst.b).unwrap();
        let plane = cfg.plane();
        assert_exact(
            &got[plane..(nk - 1) * plane],
            &expect[plane..(nk - 1) * plane],
            "conv3d buffer",
        );
    }

    #[test]
    fn matmul_random_shapes(
        blocks in 2usize..6,
        bc in 2usize..6,
        streams in 1usize..5,
    ) {
        let n = blocks * bc;
        let cfg = MatmulConfig { n, bc, chunk: 1, streams };
        let mut gpu = gpu();
        let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
        let expect = cfg.cpu_reference(
            &read_host(&gpu, a).unwrap(),
            &read_host(&gpu, b).unwrap(),
        );
        cfg.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
        let got = read_host(&gpu, c).unwrap();
        let err = max_rel_error(&got, &expect);
        prop_assert!(err < 1e-4, "relative error {err} at n={n} bc={bc}");
    }
}

//! Property tests at the application level: random problem shapes and
//! schedules through the *directive* front end must match the CPU
//! references for every execution model.

use gpsim::{DeviceProfile, ExecMode, Gpu};
use pipeline_apps::util::{assert_exact, max_rel_error, read_host};
use pipeline_apps::{Conv3dConfig, MatmulConfig, StencilConfig};
use pipeline_rt::{run_model, ExecModel, RunOptions};
use proptest::prelude::*;

fn gpu() -> Gpu {
    Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stencil_random_shapes_and_schedules(
        nx in 3usize..14,
        ny in 3usize..14,
        nz in 3usize..20,
        chunk in 1usize..6,
        streams in 1usize..5,
    ) {
        let cfg = StencilConfig {
            nx, ny, nz,
            c0: 0.25,
            c1: 0.125,
            chunk,
            streams,
        };
        let mut gpu = gpu();
        gpu.set_race_check(true);
        let inst = cfg.setup(&mut gpu).unwrap();
        let a0 = read_host(&gpu, inst.a0).unwrap();
        let expect = cfg.cpu_reference(&a0);
        let builder = cfg.builder();

        run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        let naive_out = read_host(&gpu, inst.anext).unwrap();
        gpu.host_fill(inst.anext, |_| 0.0).unwrap();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::Pipelined, &RunOptions::default()).unwrap();
        let pipe_out = read_host(&gpu, inst.anext).unwrap();
        gpu.host_fill(inst.anext, |_| 0.0).unwrap();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        let buf_out = read_host(&gpu, inst.anext).unwrap();

        // Interior planes only — the boundary planes are never written.
        let plane = cfg.plane();
        let interior = plane..(nz - 1) * plane;
        assert_exact(&naive_out[interior.clone()], &expect[interior.clone()], "naive");
        assert_exact(&pipe_out[interior.clone()], &expect[interior.clone()], "pipelined");
        assert_exact(&buf_out[interior.clone()], &expect[interior], "buffer");
    }

    #[test]
    fn conv3d_random_shapes(
        ni in 3usize..12,
        nj in 3usize..12,
        nk in 3usize..16,
        chunk in 1usize..5,
        streams in 1usize..4,
    ) {
        let cfg = Conv3dConfig { ni, nj, nk, chunk, streams };
        let mut gpu = gpu();
        let inst = cfg.setup(&mut gpu).unwrap();
        let a = read_host(&gpu, inst.a).unwrap();
        let expect = cfg.cpu_reference(&a);
        let builder = cfg.builder();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        let got = read_host(&gpu, inst.b).unwrap();
        let plane = cfg.plane();
        assert_exact(
            &got[plane..(nk - 1) * plane],
            &expect[plane..(nk - 1) * plane],
            "conv3d buffer",
        );
    }

    /// The cache-blocked GEMM body must be *bit-identical* to the scalar
    /// i-j-k reference for any shape, j-block width and k-split: blocking
    /// only reorders the j loop, never the per-element accumulation.
    #[test]
    fn blocked_gemm_body_bit_identical(
        n in 1usize..28,
        jb in 1usize..12,
        bc in 1usize..9,
        seed in 0u64..1024,
    ) {
        let fill = |s: u64, len: usize| -> Vec<f32> {
            let mut state = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            }).collect()
        };
        let a = fill(seed, n * n);
        let b = fill(seed ^ 0xB, n * n);
        let mut want = vec![0.0f32; n * n];
        pipeline_apps::matmul::gemm_scalar(&mut want, &a, &b, n);
        // Apply the blocked body as a sequence of ascending rank-bc
        // updates over a zeroed C — the same decomposition the pipelined
        // kernel uses.
        let mut got = vec![0.0f32; n * n];
        let mut k0 = 0;
        while k0 < n {
            let w = bc.min(n - k0);
            let b_rows: Vec<f32> = (0..w).flat_map(|r| b[(k0 + r) * n..(k0 + r + 1) * n].to_vec()).collect();
            pipeline_apps::matmul::gemm_rank_update_jb(&mut got, n, &a[k0..], n, &b_rows, w, jb);
            k0 += w;
        }
        prop_assert_eq!(got, want);
    }

    /// The slice-streamed stencil and conv3d plane bodies must be
    /// bit-identical to their scalar references at any plane shape.
    #[test]
    fn sliced_plane_bodies_bit_identical(
        nx in 3usize..40,
        ny in 3usize..40,
        seed in 0u64..1024,
    ) {
        let plane = nx * ny;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let g: Vec<f32> = (0..3 * plane).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        }).collect();
        let (below, rest) = g.split_at(plane);
        let (mid, above) = rest.split_at(plane);

        let mut want = vec![0.0f32; plane];
        let mut got = vec![0.0f32; plane];
        pipeline_apps::stencil::stencil_plane_scalar(&mut want, below, mid, above, nx, ny, 0.25, 0.125);
        pipeline_apps::stencil::stencil_plane(&mut got, below, mid, above, nx, ny, 0.25, 0.125);
        prop_assert_eq!(&got, &want);

        want.fill(0.0);
        got.fill(0.0);
        pipeline_apps::conv3d::conv3d_plane_scalar(&mut want, below, mid, above, nx, ny);
        pipeline_apps::conv3d::conv3d_plane(&mut got, below, mid, above, nx, ny);
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn matmul_random_shapes(
        blocks in 2usize..6,
        bc in 2usize..6,
        streams in 1usize..5,
    ) {
        let n = blocks * bc;
        let cfg = MatmulConfig { n, bc, chunk: 1, streams };
        let mut gpu = gpu();
        let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
        let expect = cfg.cpu_reference(
            &read_host(&gpu, a).unwrap(),
            &read_host(&gpu, b).unwrap(),
        );
        cfg.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
        let got = read_host(&gpu, c).unwrap();
        let err = max_rel_error(&got, &expect);
        prop_assert!(err < 1e-4, "relative error {err} at n={n} bc={bc}");
    }
}

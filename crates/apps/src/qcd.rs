//! Lattice QCD proxy (paper §V-D): a staggered-fermion hopping operator
//! on an `n⁴` lattice.
//!
//! The paper's application is a SciDAC production code characterized by
//! `O(C·n⁴)` data with a "relatively large" constant `C`,
//! high-dimensional indexing, and several parallel regions per
//! transferred slice. This proxy preserves those properties with the
//! standard structure of a HISQ-style staggered solver:
//!
//! * Each site carries **four right-hand-side vectors** (`ψ`, 4 × 3
//!   complex = 24 floats), **thin links** (`U`, 4 × 3×3 complex = 72
//!   floats) and **fat links** (`F`, 72 floats) — `C` = 192 floats/site.
//! * The hopping term, applied with both link fields to every RHS:
//!   `out(x) = Σ_μ [ (U+F)_μ(x)·ψ(x+μ̂) − (U+F)†_μ(x−μ̂)·ψ(x−μ̂) ]`
//!   with periodic boundaries in the three spatial directions and open
//!   boundaries in `t`, the split dimension (window `[t-1:3]`).
//! * The production code makes many passes over each resident slice
//!   (solver iterations); the proxy computes one representative sweep
//!   functionally and charges [`SWEEPS_PER_SLICE`] passes to the cost
//!   model, reproducing the paper's ≈50 % transfer share (Figure 3).

use gpsim::{Gpu, HostBufId, KernelCost, KernelLaunch};
use pipeline_rt::{
    Affine, ChunkCtx, MapDir, MapSpec, Region, RegionSpec, RtResult, Schedule, SplitSpec,
};

use crate::util::fill_random;

/// Right-hand-side vectors per site.
pub const N_RHS: usize = 4;
/// Floats per ψ site (4 RHS × 3 complex components).
pub const PSI_SITE: usize = N_RHS * 6;
/// Floats per link-field site (4 directions × 3×3 complex).
pub const U_SITE: usize = 72;
/// Solver passes charged to the cost model per resident slice.
pub const SWEEPS_PER_SLICE: u64 = 16;

/// Lattice QCD proxy configuration (lattice `n³ × nt`, split along `t`).
#[derive(Debug, Clone, Copy)]
pub struct QcdConfig {
    /// Spatial extent (per dimension).
    pub n: usize,
    /// Temporal extent (the split dimension).
    pub nt: usize,
    /// Time slices per chunk.
    pub chunk: usize,
    /// GPU streams.
    pub streams: usize,
}

impl QcdConfig {
    /// The paper's test sizes: `n = 12` (small), `24` (medium), `36`
    /// (large), with `nt = n`.
    pub fn paper_size(n: usize) -> Self {
        QcdConfig {
            n,
            nt: n,
            chunk: 1,
            streams: 3,
        }
    }

    /// Small shape for functional validation.
    pub fn test_small() -> Self {
        QcdConfig {
            n: 4,
            nt: 8,
            chunk: 2,
            streams: 3,
        }
    }

    /// Spatial sites per time slice.
    pub fn vol3(&self) -> usize {
        self.n * self.n * self.n
    }

    /// ψ floats per time slice.
    pub fn psi_slice(&self) -> usize {
        self.vol3() * PSI_SITE
    }

    /// Link-field floats per time slice (same for `U` and `F`).
    pub fn u_slice(&self) -> usize {
        self.vol3() * U_SITE
    }

    /// Total device bytes of the naive model (ψ, U, F, out fully
    /// resident).
    pub fn naive_bytes(&self) -> u64 {
        ((2 * self.psi_slice() + 2 * self.u_slice()) * self.nt) as u64 * 4
    }

    /// Build the region spec: ψ, U and F as `[t-1:3]` inputs, out as
    /// `[t:1]` output; loop `t in 1..nt-1`.
    pub fn spec(&self) -> RegionSpec {
        let input = |name: &str, slice_elems: usize| MapSpec {
            name: name.into(),
            dir: MapDir::To,
            split: SplitSpec::OneD {
                offset: Affine::shifted(-1),
                window: 3,
                extent: self.nt,
                slice_elems,
            },
        };
        RegionSpec::new(Schedule::static_(self.chunk, self.streams))
            .with_map(input("psi", self.psi_slice()))
            .with_map(input("U", self.u_slice()))
            .with_map(input("F", self.u_slice()))
            .with_map(MapSpec {
                name: "out".into(),
                dir: MapDir::From,
                split: SplitSpec::OneD {
                    offset: Affine::IDENTITY,
                    window: 1,
                    extent: self.nt,
                    slice_elems: self.psi_slice(),
                },
            })
            // The paper observes the QCD kernel's "huge indexing
            // operation" makes the buffered version measurably slower
            // than the hand-coded pipeline (§V-D).
            .with_index_overhead(0.12)
    }

    /// Allocate and initialize host fields, and bind the region.
    pub fn setup(&self, gpu: &mut Gpu) -> RtResult<QcdInstance> {
        let psi = gpu.alloc_host(self.psi_slice() * self.nt, true)?;
        let u = gpu.alloc_host(self.u_slice() * self.nt, true)?;
        let f = gpu.alloc_host(self.u_slice() * self.nt, true)?;
        let out = gpu.alloc_host(self.psi_slice() * self.nt, true)?;
        fill_random(gpu, psi, 0x9C1)?;
        fill_random(gpu, u, 0x9C2)?;
        fill_random(gpu, f, 0x9C3)?;
        let region = Region::new(self.spec(), 1, (self.nt - 1) as i64, vec![psi, u, f, out]);
        Ok(QcdInstance {
            config: *self,
            region,
            psi,
            u,
            f,
            out,
        })
    }

    /// Cost of one chunk: [`SWEEPS_PER_SLICE`] hopping sweeps per slice.
    /// Per site and sweep: 2 link fields × 8 hops × 4 RHS ≈ 4200 flops,
    /// ≈1600 streamed bytes (memory-bound, like the real operator).
    fn chunk_cost(&self, slices: u64) -> KernelCost {
        let sites = self.vol3() as u64 * slices;
        KernelCost {
            flops: 4200 * sites * SWEEPS_PER_SLICE,
            bytes: 1600 * sites * SWEEPS_PER_SLICE,
        }
    }

    /// Chunk-kernel builder shared by all execution models.
    pub fn builder(&self) -> impl Fn(&ChunkCtx) -> KernelLaunch + 'static {
        let cfg = *self;
        move |ctx: &ChunkCtx| {
            let (t0, t1) = (ctx.k0, ctx.k1);
            let (vpsi, vu, vf, vout) = (ctx.view(0), ctx.view(1), ctx.view(2), ctx.view(3));
            KernelLaunch::new(
                "qcd_hopping",
                cfg.chunk_cost((t1 - t0) as u64),
                move |kc| {
                    let psi_slice = cfg.psi_slice();
                    let u_slice = cfg.u_slice();
                    // One borrow per mapped array for the whole chunk;
                    // the seven per-slice windows resolve through them.
                    let pv = kc.read_view(vpsi.base())?;
                    let uv = kc.read_view(vu.base())?;
                    let fv = kc.read_view(vf.base())?;
                    let mut ov = kc.write_view(vout.base())?;
                    for t in t0..t1 {
                        let slices = HopSlices {
                            psi_m: pv.slice(vpsi.slice_ptr(t - 1), psi_slice)?,
                            psi_0: pv.slice(vpsi.slice_ptr(t), psi_slice)?,
                            psi_p: pv.slice(vpsi.slice_ptr(t + 1), psi_slice)?,
                            u_m: uv.slice(vu.slice_ptr(t - 1), u_slice)?,
                            u_0: uv.slice(vu.slice_ptr(t), u_slice)?,
                            f_m: fv.slice(vf.slice_ptr(t - 1), u_slice)?,
                            f_0: fv.slice(vf.slice_ptr(t), u_slice)?,
                        };
                        let out = ov.slice_mut(vout.slice_ptr(t), psi_slice)?;
                        hopping_sweep(cfg.n, &slices, out);
                    }
                    Ok(())
                },
            )
        }
    }

    /// Sequential CPU reference over the full lattice (identical
    /// arithmetic order → exact equality).
    pub fn cpu_reference(&self, psi: &[f32], u: &[f32], f: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.psi_slice() * self.nt];
        let ps = self.psi_slice();
        let us = self.u_slice();
        for t in 1..self.nt - 1 {
            let slices = HopSlices {
                psi_m: &psi[(t - 1) * ps..t * ps],
                psi_0: &psi[t * ps..(t + 1) * ps],
                psi_p: &psi[(t + 1) * ps..(t + 2) * ps],
                u_m: &u[(t - 1) * us..t * us],
                u_0: &u[t * us..(t + 1) * us],
                f_m: &f[(t - 1) * us..t * us],
                f_0: &f[t * us..(t + 1) * us],
            };
            hopping_sweep_scalar(self.n, &slices, &mut out[t * ps..(t + 1) * ps]);
        }
        out
    }
}

/// The seven input slices of one sweep.
pub struct HopSlices<'a> {
    /// ψ at slice `t-1`.
    pub psi_m: &'a [f32],
    /// ψ at slice `t`.
    pub psi_0: &'a [f32],
    /// ψ at slice `t+1`.
    pub psi_p: &'a [f32],
    /// Thin links at slice `t-1`.
    pub u_m: &'a [f32],
    /// Thin links at slice `t`.
    pub u_0: &'a [f32],
    /// Fat links at slice `t-1`.
    pub f_m: &'a [f32],
    /// Fat links at slice `t`.
    pub f_0: &'a [f32],
}

/// Complex 3-vector accumulator.
#[derive(Clone, Copy, Default)]
struct Vec3 {
    re: [f32; 3],
    im: [f32; 3],
}

#[inline]
fn load_vec(psi: &[f32], site: usize, rhs: usize) -> Vec3 {
    let o = site * PSI_SITE + rhs * 6;
    Vec3 {
        re: [psi[o], psi[o + 2], psi[o + 4]],
        im: [psi[o + 1], psi[o + 3], psi[o + 5]],
    }
}

/// `acc += U(site,mu) · v` (3×3 complex mat-vec).
#[inline]
fn mat_vec_acc(u: &[f32], site: usize, mu: usize, v: &Vec3, acc: &mut Vec3) {
    let base = (site * 4 + mu) * 18;
    for r in 0..3 {
        for c in 0..3 {
            let o = base + (r * 3 + c) * 2;
            let (ur, ui) = (u[o], u[o + 1]);
            acc.re[r] += ur * v.re[c] - ui * v.im[c];
            acc.im[r] += ur * v.im[c] + ui * v.re[c];
        }
    }
}

/// `acc -= U†(site,mu) · v` (conjugate-transpose mat-vec).
#[inline]
fn mat_dag_vec_sub(u: &[f32], site: usize, mu: usize, v: &Vec3, acc: &mut Vec3) {
    let base = (site * 4 + mu) * 18;
    for r in 0..3 {
        for c in 0..3 {
            // (U†)[r][c] = conj(U[c][r])
            let o = base + (c * 3 + r) * 2;
            let (ur, ui) = (u[o], -u[o + 1]);
            acc.re[r] -= ur * v.re[c] - ui * v.im[c];
            acc.im[r] -= ur * v.im[c] + ui * v.re[c];
        }
    }
}

/// One hopping sweep for one time slice, scalar-indexed: the pre-PR
/// kernel body, kept as the bit-exact reference ([`QcdConfig::cpu_reference`]
/// uses it) and the baseline the `kernel_bodies` bench compares against.
/// Spatial directions (μ = 0,1,2) are periodic; the temporal direction
/// (μ = 3) couples the neighbouring slices.
pub fn hopping_sweep_scalar(n: usize, s: &HopSlices<'_>, out: &mut [f32]) {
    let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let site = idx(x, y, z);
                let fwd = [
                    idx((x + 1) % n, y, z),
                    idx(x, (y + 1) % n, z),
                    idx(x, y, (z + 1) % n),
                ];
                let bwd = [
                    idx((x + n - 1) % n, y, z),
                    idx(x, (y + n - 1) % n, z),
                    idx(x, y, (z + n - 1) % n),
                ];
                for rhs in 0..N_RHS {
                    let mut acc = Vec3::default();
                    for links in [s.u_0, s.f_0] {
                        for mu in 0..3 {
                            let vf = load_vec(s.psi_0, fwd[mu], rhs);
                            mat_vec_acc(links, site, mu, &vf, &mut acc);
                            let vb = load_vec(s.psi_0, bwd[mu], rhs);
                            mat_dag_vec_sub(links, bwd[mu], mu, &vb, &mut acc);
                        }
                    }
                    // Temporal hops to the neighbouring slices.
                    let vf = load_vec(s.psi_p, site, rhs);
                    mat_vec_acc(s.u_0, site, 3, &vf, &mut acc);
                    let vb = load_vec(s.psi_m, site, rhs);
                    mat_dag_vec_sub(s.u_m, site, 3, &vb, &mut acc);
                    let vf = load_vec(s.psi_p, site, rhs);
                    mat_vec_acc(s.f_0, site, 3, &vf, &mut acc);
                    let vb = load_vec(s.psi_m, site, rhs);
                    mat_dag_vec_sub(s.f_m, site, 3, &vb, &mut acc);

                    let o = site * PSI_SITE + rhs * 6;
                    out[o] = acc.re[0];
                    out[o + 1] = acc.im[0];
                    out[o + 2] = acc.re[1];
                    out[o + 3] = acc.im[1];
                    out[o + 4] = acc.re[2];
                    out[o + 5] = acc.im[2];
                }
            }
        }
    }
}

/// Flattened SU(3) matrix: 9 complex entries split into re/im planes,
/// loaded from the interleaved link field once and reused.
#[derive(Clone, Copy)]
struct Su3 {
    re: [f32; 9],
    im: [f32; 9],
}

#[inline]
fn load_su3(u: &[f32], site: usize, mu: usize) -> Su3 {
    let base = (site * 4 + mu) * 18;
    let m = &u[base..base + 18];
    let mut re = [0.0f32; 9];
    let mut im = [0.0f32; 9];
    for e in 0..9 {
        re[e] = m[2 * e];
        im[e] = m[2 * e + 1];
    }
    Su3 { re, im }
}

/// `acc += M · v` on a pre-loaded matrix: same multiply/add sequence as
/// [`mat_vec_acc`], but over fixed-size arrays with no bounds checks.
#[inline]
fn su3_mv_acc(m: &Su3, v: &Vec3, acc: &mut Vec3) {
    for r in 0..3 {
        for c in 0..3 {
            let e = r * 3 + c;
            acc.re[r] += m.re[e] * v.re[c] - m.im[e] * v.im[c];
            acc.im[r] += m.re[e] * v.im[c] + m.im[e] * v.re[c];
        }
    }
}

/// `acc -= M† · v` on a pre-loaded matrix (mirror of [`mat_dag_vec_sub`]).
#[inline]
fn su3_mv_dag_sub(m: &Su3, v: &Vec3, acc: &mut Vec3) {
    for r in 0..3 {
        for c in 0..3 {
            let e = c * 3 + r;
            let (ur, ui) = (m.re[e], -m.im[e]);
            acc.re[r] -= ur * v.re[c] - ui * v.im[c];
            acc.im[r] -= ur * v.im[c] + ui * v.re[c];
        }
    }
}

/// One hopping sweep for one time slice, optimized: the 16 link matrices
/// a site needs (6 spatial forward + 6 spatial backward + 4 temporal)
/// are loaded into flattened [`Su3`] registers once and reused across all
/// [`N_RHS`] right-hand sides, with the μ loop unrolled. The per-RHS
/// accumulation sequence is identical to [`hopping_sweep_scalar`], so
/// results are bit-exact.
pub fn hopping_sweep(n: usize, s: &HopSlices<'_>, out: &mut [f32]) {
    let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let site = idx(x, y, z);
                let fwd = [
                    idx((x + 1) % n, y, z),
                    idx(x, (y + 1) % n, z),
                    idx(x, y, (z + 1) % n),
                ];
                let bwd = [
                    idx((x + n - 1) % n, y, z),
                    idx(x, (y + n - 1) % n, z),
                    idx(x, y, (z + n - 1) % n),
                ];
                let u_fwd = [
                    load_su3(s.u_0, site, 0),
                    load_su3(s.u_0, site, 1),
                    load_su3(s.u_0, site, 2),
                ];
                let u_bwd = [
                    load_su3(s.u_0, bwd[0], 0),
                    load_su3(s.u_0, bwd[1], 1),
                    load_su3(s.u_0, bwd[2], 2),
                ];
                let f_fwd = [
                    load_su3(s.f_0, site, 0),
                    load_su3(s.f_0, site, 1),
                    load_su3(s.f_0, site, 2),
                ];
                let f_bwd = [
                    load_su3(s.f_0, bwd[0], 0),
                    load_su3(s.f_0, bwd[1], 1),
                    load_su3(s.f_0, bwd[2], 2),
                ];
                let ut_f = load_su3(s.u_0, site, 3);
                let ut_b = load_su3(s.u_m, site, 3);
                let ft_f = load_su3(s.f_0, site, 3);
                let ft_b = load_su3(s.f_m, site, 3);
                for rhs in 0..N_RHS {
                    let mut acc = Vec3::default();
                    let pf = [
                        load_vec(s.psi_0, fwd[0], rhs),
                        load_vec(s.psi_0, fwd[1], rhs),
                        load_vec(s.psi_0, fwd[2], rhs),
                    ];
                    let pb = [
                        load_vec(s.psi_0, bwd[0], rhs),
                        load_vec(s.psi_0, bwd[1], rhs),
                        load_vec(s.psi_0, bwd[2], rhs),
                    ];
                    // Thin links, μ = 0,1,2 unrolled (same order as the
                    // scalar sweep's links × μ loop nest).
                    su3_mv_acc(&u_fwd[0], &pf[0], &mut acc);
                    su3_mv_dag_sub(&u_bwd[0], &pb[0], &mut acc);
                    su3_mv_acc(&u_fwd[1], &pf[1], &mut acc);
                    su3_mv_dag_sub(&u_bwd[1], &pb[1], &mut acc);
                    su3_mv_acc(&u_fwd[2], &pf[2], &mut acc);
                    su3_mv_dag_sub(&u_bwd[2], &pb[2], &mut acc);
                    // Fat links, μ = 0,1,2.
                    su3_mv_acc(&f_fwd[0], &pf[0], &mut acc);
                    su3_mv_dag_sub(&f_bwd[0], &pb[0], &mut acc);
                    su3_mv_acc(&f_fwd[1], &pf[1], &mut acc);
                    su3_mv_dag_sub(&f_bwd[1], &pb[1], &mut acc);
                    su3_mv_acc(&f_fwd[2], &pf[2], &mut acc);
                    su3_mv_dag_sub(&f_bwd[2], &pb[2], &mut acc);
                    // Temporal hops to the neighbouring slices.
                    let vt_p = load_vec(s.psi_p, site, rhs);
                    let vt_m = load_vec(s.psi_m, site, rhs);
                    su3_mv_acc(&ut_f, &vt_p, &mut acc);
                    su3_mv_dag_sub(&ut_b, &vt_m, &mut acc);
                    su3_mv_acc(&ft_f, &vt_p, &mut acc);
                    su3_mv_dag_sub(&ft_b, &vt_m, &mut acc);

                    let o = site * PSI_SITE + rhs * 6;
                    out[o] = acc.re[0];
                    out[o + 1] = acc.im[0];
                    out[o + 2] = acc.re[1];
                    out[o + 3] = acc.im[1];
                    out[o + 4] = acc.re[2];
                    out[o + 5] = acc.im[2];
                }
            }
        }
    }
}

/// A bound QCD problem.
pub struct QcdInstance {
    /// The configuration that produced this instance.
    pub config: QcdConfig,
    /// The bound region (loop `t in 1..nt-1`).
    pub region: Region,
    /// ψ field host buffer (4 RHS).
    pub psi: HostBufId,
    /// Thin gauge links host buffer.
    pub u: HostBufId,
    /// Fat gauge links host buffer.
    pub f: HostBufId,
    /// Output field host buffer.
    pub out: HostBufId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{assert_exact, read_host};
    use gpsim::{DeviceProfile, ExecMode};
    use pipeline_rt::{run_model, ExecModel, RunOptions};

    #[test]
    fn all_models_match_cpu_reference() {
        let cfg = QcdConfig::test_small();
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        gpu.set_race_check(true);
        let inst = cfg.setup(&mut gpu).unwrap();
        let psi = read_host(&gpu, inst.psi).unwrap();
        let u = read_host(&gpu, inst.u).unwrap();
        let f = read_host(&gpu, inst.f).unwrap();
        let expect = cfg.cpu_reference(&psi, &u, &f);
        let builder = cfg.builder();

        run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        assert_exact(&read_host(&gpu, inst.out).unwrap(), &expect, "naive");

        gpu.host_fill(inst.out, |_| 0.0).unwrap();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::Pipelined, &RunOptions::default()).unwrap();
        assert_exact(&read_host(&gpu, inst.out).unwrap(), &expect, "pipelined");

        gpu.host_fill(inst.out, |_| 0.0).unwrap();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        assert_exact(&read_host(&gpu, inst.out).unwrap(), &expect, "buffer");
    }

    #[test]
    fn optimized_sweep_is_bit_identical_to_scalar() {
        let n = 5;
        let vol3 = n * n * n;
        let (ps, us) = (vol3 * PSI_SITE, vol3 * U_SITE);
        let fill = |seed: u64, len: usize| -> Vec<f32> {
            let mut state = seed;
            (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                })
                .collect()
        };
        let psi = fill(1, 3 * ps);
        let u = fill(2, 2 * us);
        let f = fill(3, 2 * us);
        let slices = HopSlices {
            psi_m: &psi[..ps],
            psi_0: &psi[ps..2 * ps],
            psi_p: &psi[2 * ps..],
            u_m: &u[..us],
            u_0: &u[us..],
            f_m: &f[..us],
            f_0: &f[us..],
        };
        let mut scalar = vec![0.0f32; ps];
        let mut opt = vec![0.0f32; ps];
        hopping_sweep_scalar(n, &slices, &mut scalar);
        hopping_sweep(n, &slices, &mut opt);
        assert_eq!(scalar, opt, "flattened SU(3) sweep must be bit-exact");
    }

    #[test]
    fn naive_transfer_share_is_about_half() {
        // Figure 3 (left): "data transfers consume nearly 50% of
        // execution time" in the naive QCD model on the K40m.
        let cfg = QcdConfig::paper_size(24);
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
        let inst = cfg.setup(&mut gpu).unwrap();
        let rep = run_model(&mut gpu, &inst.region, &cfg.builder(), ExecModel::Naive, &RunOptions::default()).unwrap();
        let share = rep.transfer_fraction();
        assert!(
            (0.35..0.65).contains(&share),
            "transfer share {share} not ≈50%"
        );
    }

    #[test]
    fn space_complexity_drops_by_one_dimension() {
        // §V-F: splitting reduces O(n⁴) resident data to O(C·n³).
        let cfg = QcdConfig::paper_size(12);
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
        let inst = cfg.setup(&mut gpu).unwrap();
        let builder = cfg.builder();
        let naive = run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        let buf = run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        // Ring ≈ C slices vs nt slices.
        let per_slice = (2 * cfg.psi_slice() + 2 * cfg.u_slice()) as u64 * 4;
        assert_eq!(naive.array_bytes, per_slice * cfg.nt as u64);
        assert!(buf.array_bytes < per_slice * 8, "{}", buf.array_bytes);
    }
}

//! # pipeline-apps — the paper's four evaluation applications
//!
//! Implements the applications from the evaluation section of
//! *Directive-Based Partitioning and Pipelining for Graphics Processing
//! Units* (IPDPS 2017), each providing a workload generator, a CPU
//! reference, a chunk-kernel for the simulated GPU, and a bound
//! [`pipeline_rt::Region`]:
//!
//! * [`stencil`] — the Parboil 7-point Jacobi heat-equation stencil
//!   (§V-C, Figure 2's running example);
//! * [`conv3d`] — the Polybench 3-D convolution (§V-B);
//! * [`matmul`] — the Polybench matrix multiplication with its three
//!   versions: baseline, block-shared and pipeline-buffer (§V-E);
//! * [`qcd`] — a staggered-fermion hopping proxy for the SciDAC Lattice
//!   QCD application (§V-D).
//!
//! Stencil and conv3d build their region specs by parsing the paper's
//! own directive syntax (via `pipeline-directive`), exercising the full
//! front-to-back path a user of the proposed extension would take.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conv3d;
pub mod matmul;
pub mod qcd;
pub mod stencil;
pub mod util;

pub use conv3d::{Conv3dConfig, Conv3dInstance};
pub use matmul::MatmulConfig;
pub use qcd::{QcdConfig, QcdInstance};
pub use stencil::{StencilConfig, StencilInstance};

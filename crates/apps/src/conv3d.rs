//! Polybench-style 3-D convolution (paper §V-B): a 3×3×3 tap applied to
//! a dense volume, split along the outermost dimension with a ±1 halo.
//!
//! Uses the Polybench `conv3d` coefficient pattern: the output at
//! `(i,j,k)` combines the eight "diagonal" taps of the `k−1` and `k+1`
//! planes plus the center column of the `k` plane.

use gpsim::{Gpu, HostBufId, KernelCost, KernelLaunch};
use pipeline_directive::parse_directive;
use pipeline_rt::{ChunkCtx, Region, RtError, RtResult};

use crate::util::fill_random;

/// One k-plane of the 11-tap convolution, scalar-indexed: the
/// pre-blocking kernel body, kept as the bit-exact reference and the
/// baseline the `kernel_bodies` bench compares against.
pub fn conv3d_plane_scalar(out: &mut [f32], km: &[f32], kmid: &[f32], kp: &[f32], ni: usize, nj: usize) {
    let [c11, c12, c13, c21, c22, c23, c31, c32, c33] = Conv3dConfig::C;
    for j in 1..nj - 1 {
        for i in 1..ni - 1 {
            let at = |p: &[f32], di: i64, dj: i64| {
                p[((j as i64 + dj) as usize) * ni + (i as i64 + di) as usize]
            };
            out[j * ni + i] = c11 * at(km, -1, -1)
                + c13 * at(km, 1, -1)
                + c21 * at(km, -1, 0)
                + c23 * at(km, 1, 0)
                + c31 * at(km, -1, 1)
                + c33 * at(km, 1, 1)
                + c12 * at(kmid, 0, -1)
                + c22 * at(kmid, 0, 0)
                + c32 * at(kmid, 0, 1)
                + c11 * at(kp, -1, -1)
                + c13 * at(kp, 1, -1);
        }
    }
}

/// One k-plane of the 11-tap convolution over row slices: each tap is a
/// fixed-length stream, so the inner loop is bounds-check-free and
/// autovectorizes. Tap addition order matches [`conv3d_plane_scalar`]
/// exactly — results are bit-identical.
pub fn conv3d_plane(out: &mut [f32], km: &[f32], kmid: &[f32], kp: &[f32], ni: usize, nj: usize) {
    let [c11, c12, c13, c21, c22, c23, c31, c32, c33] = Conv3dConfig::C;
    let w = ni - 2;
    for j in 1..nj - 1 {
        let (jm, j0, jp) = ((j - 1) * ni, j * ni, (j + 1) * ni);
        let o = &mut out[j0 + 1..j0 + 1 + w];
        let (km_nw, km_ne) = (&km[jm..jm + w], &km[jm + 2..jm + 2 + w]);
        let (km_w, km_e) = (&km[j0..j0 + w], &km[j0 + 2..j0 + 2 + w]);
        let (km_sw, km_se) = (&km[jp..jp + w], &km[jp + 2..jp + 2 + w]);
        let (mid_n, mid_c, mid_s) = (
            &kmid[jm + 1..jm + 1 + w],
            &kmid[j0 + 1..j0 + 1 + w],
            &kmid[jp + 1..jp + 1 + w],
        );
        let (kp_nw, kp_ne) = (&kp[jm..jm + w], &kp[jm + 2..jm + 2 + w]);
        for x in 0..w {
            o[x] = c11 * km_nw[x]
                + c13 * km_ne[x]
                + c21 * km_w[x]
                + c23 * km_e[x]
                + c31 * km_sw[x]
                + c33 * km_se[x]
                + c12 * mid_n[x]
                + c22 * mid_c[x]
                + c32 * mid_s[x]
                + c11 * kp_nw[x]
                + c13 * kp_ne[x];
        }
    }
}

/// 3-D convolution problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct Conv3dConfig {
    /// Fastest-varying dimension.
    pub ni: usize,
    /// Middle dimension.
    pub nj: usize,
    /// Split (outermost) dimension.
    pub nk: usize,
    /// Iterations per chunk.
    pub chunk: usize,
    /// GPU streams.
    pub streams: usize,
}

impl Conv3dConfig {
    /// Paper-scale shape: the default Polybench test case is "relatively
    /// large" — the Naive/Pipelined versions need ≈3.5 GB of device
    /// memory (Figure 6). 768³ × 4 B × 2 arrays = 3.6 GB.
    pub fn polybench_default() -> Self {
        // Chunk size 1 is the paper's default ("we split the task by the
        // outer loop into small chunks, which means the chunk size is 1",
        // §V-B).
        Conv3dConfig {
            ni: 768,
            nj: 768,
            nk: 768,
            chunk: 1,
            streams: 3,
        }
    }

    /// Small shape for functional validation.
    pub fn test_small() -> Self {
        Conv3dConfig {
            ni: 10,
            nj: 12,
            nk: 14,
            chunk: 3,
            streams: 2,
        }
    }

    /// Elements per k-plane.
    pub fn plane(&self) -> usize {
        self.ni * self.nj
    }

    /// Total volume elements.
    pub fn total(&self) -> usize {
        self.plane() * self.nk
    }

    /// Directive in the paper's clause syntax.
    pub fn directive(&self) -> String {
        format!(
            "pipeline(static[{},{}]) \
             pipeline_map(to:A[k-1:3][0:{}][0:{}]) \
             pipeline_map(from:B[k:1][0:{}][0:{}])",
            self.chunk, self.streams, self.nj, self.ni, self.nj, self.ni
        )
    }

    /// Allocate, initialize and bind the region (loop `k in 1..nk-1`).
    pub fn setup(&self, gpu: &mut Gpu) -> RtResult<Conv3dInstance> {
        let a = gpu.alloc_host(self.total(), true)?;
        let b = gpu.alloc_host(self.total(), true)?;
        fill_random(gpu, a, 0xC0417)?;
        let parsed = parse_directive(&self.directive())
            .map_err(|e| RtError::Spec(format!("conv3d directive: {e}")))?;
        let nk = self.nk;
        let spec = parsed
            .to_region_spec(|_| Some(nk))
            .map_err(|e| RtError::Spec(format!("conv3d binding: {e}")))?;
        let region = Region::new(spec, 1, (self.nk - 1) as i64, vec![a, b]);
        Ok(Conv3dInstance {
            config: *self,
            region,
            a,
            b,
        })
    }

    /// Kernel cost per plane: 11 taps → 21 flops/point, streaming ~12
    /// bytes/point.
    fn plane_cost(&self) -> KernelCost {
        let pts = self.plane() as u64;
        KernelCost {
            flops: 21 * pts,
            bytes: 12 * pts,
        }
    }

    /// Polybench conv3d coefficients.
    const C: [f32; 9] = [2.0, -3.0, 4.0, 5.0, 6.0, -7.0, 8.0, -9.0, 10.0];

    /// Chunk-kernel builder shared by all execution models.
    pub fn builder(&self) -> impl Fn(&ChunkCtx) -> KernelLaunch + 'static {
        let cfg = *self;
        move |ctx: &ChunkCtx| {
            let (k0, k1) = (ctx.k0, ctx.k1);
            let (vin, vout) = (ctx.view(0), ctx.view(1));
            let per_plane = cfg.plane_cost();
            let planes = (k1 - k0) as u64;
            KernelLaunch::new(
                "conv3d",
                KernelCost {
                    flops: per_plane.flops * planes,
                    bytes: per_plane.bytes * planes,
                },
                move |kc| {
                    let (ni, nj) = (cfg.ni, cfg.nj);
                    let plane = cfg.plane();
                    // One borrow per mapped array for the whole chunk.
                    let vi = kc.read_view(vin.base())?;
                    let mut vo = kc.write_view(vout.base())?;
                    for k in k0..k1 {
                        let km = vi.slice(vin.slice_ptr(k - 1), plane)?;
                        let kmid = vi.slice(vin.slice_ptr(k), plane)?;
                        let kp = vi.slice(vin.slice_ptr(k + 1), plane)?;
                        let out = vo.slice_mut(vout.slice_ptr(k), plane)?;
                        conv3d_plane(out, km, kmid, kp, ni, nj);
                    }
                    Ok(())
                },
            )
        }
    }

    /// Sequential CPU reference with identical arithmetic order.
    pub fn cpu_reference(&self, a: &[f32]) -> Vec<f32> {
        let (ni, nj, nk) = (self.ni, self.nj, self.nk);
        let plane = self.plane();
        let mut out = vec![0.0f32; self.total()];
        for k in 1..nk - 1 {
            conv3d_plane_scalar(
                &mut out[k * plane..(k + 1) * plane],
                &a[(k - 1) * plane..k * plane],
                &a[k * plane..(k + 1) * plane],
                &a[(k + 1) * plane..(k + 2) * plane],
                ni,
                nj,
            );
        }
        out
    }
}

/// A bound 3-D convolution problem.
pub struct Conv3dInstance {
    /// The configuration that produced this instance.
    pub config: Conv3dConfig,
    /// The bound region (loop `k in 1..nk-1`).
    pub region: Region,
    /// Input volume host buffer.
    pub a: HostBufId,
    /// Output volume host buffer.
    pub b: HostBufId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{assert_exact, read_host};
    use gpsim::{DeviceProfile, ExecMode};
    use pipeline_rt::{run_model, ExecModel, RunOptions};

    #[test]
    fn all_models_match_cpu_reference() {
        let cfg = Conv3dConfig::test_small();
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        gpu.set_race_check(true);
        let inst = cfg.setup(&mut gpu).unwrap();
        let a = read_host(&gpu, inst.a).unwrap();
        let expect = cfg.cpu_reference(&a);
        let builder = cfg.builder();

        for (name, model) in [
            ("naive", ExecModel::Naive),
            ("pipelined", ExecModel::Pipelined),
            ("buffer", ExecModel::PipelinedBuffer),
        ] {
            gpu.host_fill(inst.b, |_| 0.0).unwrap();
            run_model(&mut gpu, &inst.region, &builder, model, &RunOptions::default()).unwrap();
            assert_exact(&read_host(&gpu, inst.b).unwrap(), &expect, name);
        }
    }

    #[test]
    fn paper_scale_footprint_is_about_3_5_gb() {
        let cfg = Conv3dConfig::polybench_default();
        let bytes = 2 * cfg.total() as u64 * 4;
        assert!((3_400_000_000..3_800_000_000).contains(&bytes), "{bytes}");
    }
}

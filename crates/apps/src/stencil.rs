//! Parboil-style 7-point stencil: one Jacobi sweep of the 3-D heat
//! equation (the paper's Figure 2 example and §V-C benchmark).
//!
//! The grid is `nz` planes of `ny × nx` points, split along `z`. Input
//! `A0` maps with window `[k-1:3]`, output `Anext` with `[k:1]` — the
//! region spec is built by parsing the *paper's own directive syntax*
//! through `pipeline-directive`.

use gpsim::{Gpu, HostBufId, KernelCost, KernelLaunch};
use pipeline_directive::parse_directive;
use pipeline_rt::{ChunkCtx, Region, RtError, RtResult};

use crate::util::fill_random;

/// One z-plane of the 7-point sweep, scalar-indexed: the pre-blocking
/// kernel body, kept as the bit-exact reference and the baseline the
/// `kernel_bodies` bench compares against.
#[allow(clippy::too_many_arguments)]
pub fn stencil_plane_scalar(
    out: &mut [f32],
    below: &[f32],
    mid: &[f32],
    above: &[f32],
    nx: usize,
    ny: usize,
    c0: f32,
    c1: f32,
) {
    for j in 1..ny - 1 {
        for i in 1..nx - 1 {
            let c = j * nx + i;
            out[c] =
                (above[c] + below[c] + mid[c + nx] + mid[c - nx] + mid[c + 1] + mid[c - 1]) * c1
                    - mid[c] * c0;
        }
    }
}

/// One z-plane of the 7-point sweep over row slices: every tap stream is
/// a fixed-length sub-slice, so the inner loop carries no bounds checks
/// and autovectorizes. The tap addition order is identical to
/// [`stencil_plane_scalar`] — results are bit-exact.
#[allow(clippy::too_many_arguments)]
pub fn stencil_plane(
    out: &mut [f32],
    below: &[f32],
    mid: &[f32],
    above: &[f32],
    nx: usize,
    ny: usize,
    c0: f32,
    c1: f32,
) {
    let w = nx - 2;
    for j in 1..ny - 1 {
        let r = j * nx;
        let o = &mut out[r + 1..r + 1 + w];
        let up = &above[r + 1..r + 1 + w];
        let dn = &below[r + 1..r + 1 + w];
        let north = &mid[r + nx + 1..r + nx + 1 + w];
        let south = &mid[r - nx + 1..r - nx + 1 + w];
        let east = &mid[r + 2..r + 2 + w];
        let west = &mid[r..r + w];
        let center = &mid[r + 1..r + 1 + w];
        for i in 0..w {
            o[i] = (up[i] + dn[i] + north[i] + south[i] + east[i] + west[i]) * c1
                - center[i] * c0;
        }
    }
}

/// Stencil problem configuration.
#[derive(Debug, Clone, Copy)]
pub struct StencilConfig {
    /// Fastest-varying dimension.
    pub nx: usize,
    /// Middle dimension.
    pub ny: usize,
    /// Split (outermost) dimension.
    pub nz: usize,
    /// Center coefficient.
    pub c0: f32,
    /// Neighbour coefficient.
    pub c1: f32,
    /// Iterations per chunk.
    pub chunk: usize,
    /// GPU streams.
    pub streams: usize,
}

impl StencilConfig {
    /// Parboil default-class shape (512 × 512 × 64), the paper's test
    /// size, with the Figure 2 schedule `static[1,3]`.
    pub fn parboil_default() -> Self {
        StencilConfig {
            nx: 512,
            ny: 512,
            nz: 64,
            c0: 1.0 / 6.0,
            c1: 1.0 / 6.0 / 6.0,
            chunk: 1,
            streams: 3,
        }
    }

    /// Small shape for functional validation.
    pub fn test_small() -> Self {
        StencilConfig {
            nx: 12,
            ny: 10,
            nz: 16,
            c0: 0.5,
            c1: 0.1,
            chunk: 2,
            streams: 3,
        }
    }

    /// Elements per z-plane.
    pub fn plane(&self) -> usize {
        self.nx * self.ny
    }

    /// Total grid elements.
    pub fn total(&self) -> usize {
        self.plane() * self.nz
    }

    /// The directive string for this configuration, in the paper's
    /// Figure 2 syntax.
    pub fn directive(&self) -> String {
        format!(
            "#pragma omp target pipeline(static[{},{}]) \
             pipeline_map(to:A0[k-1:3][0:{}][0:{}]) \
             pipeline_map(from:Anext[k:1][0:{}][0:{}])",
            self.chunk, self.streams, self.ny, self.nx, self.ny, self.nx
        )
    }

    /// Allocate and initialize host arrays, parse the directive, and bind
    /// the region (loop `k in 1..nz-1`).
    pub fn setup(&self, gpu: &mut Gpu) -> RtResult<StencilInstance> {
        let a0 = gpu.alloc_host(self.total(), true)?;
        let anext = gpu.alloc_host(self.total(), true)?;
        fill_random(gpu, a0, 0x57E7C11)?;
        let parsed = parse_directive(&self.directive())
            .map_err(|e| RtError::Spec(format!("stencil directive: {e}")))?;
        let nz = self.nz;
        let spec = parsed
            .to_region_spec(|_| Some(nz))
            .map_err(|e| RtError::Spec(format!("stencil binding: {e}")))?;
        let region = Region::new(spec, 1, (self.nz - 1) as i64, vec![a0, anext]);
        Ok(StencilInstance {
            config: *self,
            region,
            a0,
            anext,
        })
    }

    /// Kernel cost per z-plane: 8 flops/point and ~20 streamed bytes per
    /// point (read + write + imperfect cache reuse across the 7 taps —
    /// calibrated against the Parboil kernel's memory-bound behaviour).
    fn plane_cost(&self) -> KernelCost {
        let pts = self.plane() as u64;
        KernelCost {
            flops: 8 * pts,
            bytes: 24 * pts,
        }
    }

    /// The chunk-kernel builder shared by all execution models.
    pub fn builder(&self) -> impl Fn(&ChunkCtx) -> KernelLaunch + 'static {
        let cfg = *self;
        move |ctx: &ChunkCtx| {
            let (k0, k1) = (ctx.k0, ctx.k1);
            let (vin, vout) = (ctx.view(0), ctx.view(1));
            let per_plane = cfg.plane_cost();
            let planes = (k1 - k0) as u64;
            KernelLaunch::new(
                "stencil7",
                KernelCost {
                    flops: per_plane.flops * planes,
                    bytes: per_plane.bytes * planes,
                },
                move |kc| {
                    let (nx, ny) = (cfg.nx, cfg.ny);
                    let plane = cfg.plane();
                    // One borrow per mapped array for the whole chunk;
                    // ring slots resolve through the views per plane.
                    let vi = kc.read_view(vin.base())?;
                    let mut vo = kc.write_view(vout.base())?;
                    for k in k0..k1 {
                        let below = vi.slice(vin.slice_ptr(k - 1), plane)?;
                        let mid = vi.slice(vin.slice_ptr(k), plane)?;
                        let above = vi.slice(vin.slice_ptr(k + 1), plane)?;
                        let out = vo.slice_mut(vout.slice_ptr(k), plane)?;
                        stencil_plane(out, below, mid, above, nx, ny, cfg.c0, cfg.c1);
                    }
                    Ok(())
                },
            )
        }
    }

    /// Sequential CPU reference (identical arithmetic order → exact
    /// equality with the simulated device result).
    pub fn cpu_reference(&self, a0: &[f32]) -> Vec<f32> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = self.plane();
        let mut out = vec![0.0f32; self.total()];
        for k in 1..nz - 1 {
            stencil_plane_scalar(
                &mut out[k * plane..(k + 1) * plane],
                &a0[(k - 1) * plane..k * plane],
                &a0[k * plane..(k + 1) * plane],
                &a0[(k + 1) * plane..(k + 2) * plane],
                nx,
                ny,
                self.c0,
                self.c1,
            );
        }
        out
    }
}

/// A bound stencil problem ready to run.
pub struct StencilInstance {
    /// The configuration that produced this instance.
    pub config: StencilConfig,
    /// The bound region (loop `k in 1..nz-1`).
    pub region: Region,
    /// Input grid host buffer.
    pub a0: HostBufId,
    /// Output grid host buffer.
    pub anext: HostBufId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{assert_exact, read_host};
    use gpsim::{DeviceProfile, ExecMode};
    use pipeline_rt::{run_model, ExecModel, RunOptions};

    #[test]
    fn all_models_match_cpu_reference() {
        let cfg = StencilConfig::test_small();
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        gpu.set_race_check(true);
        let inst = cfg.setup(&mut gpu).unwrap();
        let a0 = read_host(&gpu, inst.a0).unwrap();
        let expect = cfg.cpu_reference(&a0);
        let builder = cfg.builder();

        run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        assert_exact(&read_host(&gpu, inst.anext).unwrap(), &expect, "naive");

        gpu.host_fill(inst.anext, |_| 0.0).unwrap();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::Pipelined, &RunOptions::default()).unwrap();
        assert_exact(&read_host(&gpu, inst.anext).unwrap(), &expect, "pipelined");

        gpu.host_fill(inst.anext, |_| 0.0).unwrap();
        run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        assert_exact(&read_host(&gpu, inst.anext).unwrap(), &expect, "buffer");
    }

    #[test]
    fn directive_matches_figure2_shape() {
        let cfg = StencilConfig::parboil_default();
        let d = cfg.directive();
        assert!(d.contains("pipeline(static[1,3])"));
        assert!(d.contains("A0[k-1:3]"));
        assert!(d.contains("Anext[k:1]"));
    }

    #[test]
    fn buffer_model_reduces_stencil_memory() {
        let cfg = StencilConfig::test_small();
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
        let inst = cfg.setup(&mut gpu).unwrap();
        let builder = cfg.builder();
        let naive = run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        let buf = run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        assert!(buf.array_bytes < naive.array_bytes / 2);
    }
}

//! Shared helpers for the evaluation applications: seeded workload
//! generation and result comparison.

use gpsim::{ExecMode, Gpu, HostBufId, SimResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fill a host buffer with reproducible pseudo-random values in
/// `[-1, 1)`. No-op in timing mode (phantom buffers hold no data).
pub fn fill_random(gpu: &Gpu, buf: HostBufId, seed: u64) -> SimResult<()> {
    if gpu.mode() == ExecMode::Timing {
        return Ok(());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    gpu.host_fill(buf, |_| rng.gen_range(-1.0f32..1.0))
}

/// Read an entire host buffer into a vector (functional mode only).
pub fn read_host(gpu: &Gpu, buf: HostBufId) -> SimResult<Vec<f32>> {
    let len = gpu.host_len(buf)?;
    let mut v = vec![0.0f32; len];
    gpu.host_read(buf, 0, &mut v)?;
    Ok(v)
}

/// Maximum relative error between two result vectors, with an absolute
/// floor to avoid blowing up near zero.
pub fn max_rel_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut worst = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let denom = x.abs().max(y.abs()).max(1.0);
        worst = worst.max((x - y).abs() / denom);
    }
    worst
}

/// Assert two vectors are exactly equal, reporting the first mismatch.
pub fn assert_exact(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(
            x == y || (x.is_nan() && y.is_nan()),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsim::DeviceProfile;

    #[test]
    fn fill_is_deterministic() {
        let mut gpu = Gpu::new(DeviceProfile::uniform_test(), ExecMode::Functional).unwrap();
        let a = gpu.alloc_host(64, true).unwrap();
        let b = gpu.alloc_host(64, true).unwrap();
        fill_random(&gpu, a, 42).unwrap();
        fill_random(&gpu, b, 42).unwrap();
        assert_exact(&read_host(&gpu, a).unwrap(), &read_host(&gpu, b).unwrap(), "fill");
        // Different seed → different data.
        fill_random(&gpu, b, 43).unwrap();
        assert!(max_rel_error(&read_host(&gpu, a).unwrap(), &read_host(&gpu, b).unwrap()) > 0.0);
    }

    #[test]
    fn fill_noop_in_timing_mode() {
        let mut gpu = Gpu::new(DeviceProfile::uniform_test(), ExecMode::Timing).unwrap();
        let a = gpu.alloc_host(64, true).unwrap();
        fill_random(&gpu, a, 1).unwrap();
    }

    #[test]
    fn rel_error_basics() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = max_rel_error(&[100.0], &[101.0]);
        assert!((e - 0.01f32 / 1.01).abs() < 1e-4);
    }
}

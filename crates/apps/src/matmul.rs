//! Polybench-style matrix multiplication (paper §V-E, Figures 9–10):
//! the case study for **non-contiguous** (2-D strided) transfers.
//!
//! Three versions, as in the paper:
//!
//! * [`MatmulConfig::run_baseline`] — naive GEMM: all three matrices
//!   device-resident, one thread per `C` element, memory-bound (gathers a
//!   row of `A` and a column of `B` from global memory per element).
//! * [`MatmulConfig::run_block_shared`] — same data movement, but a
//!   tiled/shared-memory kernel ≈3× faster ("using shared memory
//!   significantly reduces global memory access").
//! * [`MatmulConfig::run_pipeline_buffer`] — the paper's approach:
//!   partition the *reduction* dimension into blocks; task `l` needs a
//!   **column block of `A`** (non-contiguous, strided copy) and a **row
//!   block of `B`** (contiguous), accumulating into a device-resident
//!   `C` (addressed via `deviceptr`, outside the pipeline maps). The ring
//!   buffers hold only a few blocks, cutting device memory ≈66 % and
//!   letting problem sizes that OOM the other two versions run.

use gpsim::{DevPtr, Gpu, HostBufId, KernelCost, KernelLaunch};
use pipeline_rt::{
    run_model, Affine, ChunkCtx, ExecModel, MapDir, MapSpec, Region, RegionSpec, RtResult,
    RunOptions, Schedule, SplitSpec,
};
use pipeline_rt::RunReport;

use crate::util::fill_random;

/// Column width of the j-blocked inner loops: one block of a `C` row and
/// a `B` row stays L1-resident across the whole k pass.
const GEMM_JB: usize = 512;

/// Scalar i-j-k GEMM accumulating into `c` (which must be zeroed): one
/// register accumulator per output element. This is the pre-blocking
/// kernel body, kept as the bit-exact reference and the baseline the
/// `kernel_bodies` bench compares against.
pub fn gemm_scalar(c: &mut [f32], a: &[f32], b: &[f32], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Cache-blocked i-k-j rank-`bc` update: `C += A·B` where `a` holds `n`
/// rows of `bc` elements at stride `a_stride` and `b` is `bc × n`
/// contiguous.
///
/// For a fixed output element the products are added in ascending `k`
/// starting from the incoming value — the identical f32 addition sequence
/// to [`gemm_scalar`]'s register accumulator — so a full multiply built
/// from ascending blocks over a zeroed `C` is bit-identical to the scalar
/// reference while the j-contiguous inner loop autovectorizes.
pub fn gemm_rank_update(
    c: &mut [f32],
    n: usize,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    bc: usize,
) {
    gemm_rank_update_jb(c, n, a, a_stride, b, bc, GEMM_JB)
}

/// [`gemm_rank_update`] with an explicit j-block width, so tests can
/// cross the block seam at small problem sizes.
#[doc(hidden)]
pub fn gemm_rank_update_jb(
    c: &mut [f32],
    n: usize,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    bc: usize,
    jb: usize,
) {
    for i in 0..n {
        let a_row = &a[i * a_stride..i * a_stride + bc];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jw = (n - j0).min(jb);
            let c_blk = &mut c_row[j0..j0 + jw];
            for (kk, &av) in a_row.iter().enumerate() {
                let b_blk = &b[kk * n + j0..kk * n + j0 + jw];
                for (cv, &bv) in c_blk.iter_mut().zip(b_blk) {
                    *cv += av * bv;
                }
            }
            j0 += jw;
        }
    }
}

/// Matrix multiplication configuration (`C = A × B`, all `n × n`).
#[derive(Debug, Clone, Copy)]
pub struct MatmulConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Reduction-dimension block size (columns of `A` / rows of `B` per
    /// task). Must divide `n`.
    pub bc: usize,
    /// Tasks per chunk.
    pub chunk: usize,
    /// GPU streams.
    pub streams: usize,
}

/// Calibration of the kernel cost models against the K40m profile:
/// the naive one-thread-per-element kernel streams ≈1 operand byte per
/// 5 flops from global memory (≈3× slower than the compute roofline),
/// while the tiled kernel reuses tiles enough to be compute-bound.
const BASELINE_BYTES_PER_FLOP_INV: u64 = 5;
const TILED_BYTES_PER_FLOP_INV: u64 = 50;

impl MatmulConfig {
    /// Configuration with the schedule used in the paper's GEMM study.
    /// The reduction block is kept small relative to `n` so the ring
    /// buffers stay negligible next to the resident `C` (the source of
    /// the paper's ≈66 % memory saving).
    pub fn with_n(n: usize) -> Self {
        // ≥256 columns so each strided row is ≥1 KB (useful 2-D DMA
        // size), but ≤n/64 at scale so the rings stay negligible.
        let bc = (n / 64).max(256).min(n);
        MatmulConfig {
            n,
            bc,
            chunk: 1,
            streams: 4,
        }
    }

    /// Small shape for functional validation.
    pub fn test_small() -> Self {
        MatmulConfig {
            n: 24,
            bc: 4,
            chunk: 1,
            streams: 3,
        }
    }

    /// Elements per matrix.
    pub fn elems(&self) -> usize {
        self.n * self.n
    }

    /// Number of reduction blocks.
    pub fn nblocks(&self) -> usize {
        assert_eq!(self.n % self.bc, 0, "bc must divide n");
        self.n / self.bc
    }

    /// Total flops of the full GEMM.
    fn total_flops(&self) -> u64 {
        2 * (self.n as u64).pow(3)
    }

    /// Allocate and fill host matrices; returns `(a, b, c)`.
    pub fn host_matrices(&self, gpu: &mut Gpu) -> RtResult<(HostBufId, HostBufId, HostBufId)> {
        let a = gpu.alloc_host(self.elems(), true)?;
        let b = gpu.alloc_host(self.elems(), true)?;
        let c = gpu.alloc_host(self.elems(), true)?;
        fill_random(gpu, a, 0xA)?;
        fill_random(gpu, b, 0xB)?;
        Ok((a, b, c))
    }

    /// Sequential CPU reference (same arithmetic order as the baseline
    /// kernel: exact equality expected).
    pub fn cpu_reference(&self, a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = self.n;
        let mut c = vec![0.0f32; n * n];
        gemm_scalar(&mut c, a, b, n);
        c
    }

    /// A full-matrix map (whole array needed by the single naive task).
    fn full_map(&self, name: &str, dir: MapDir) -> MapSpec {
        MapSpec {
            name: name.into(),
            dir,
            split: SplitSpec::OneD {
                offset: Affine { scale: 0, bias: 0 },
                window: self.n,
                extent: self.n,
                slice_elems: self.n,
            },
        }
    }

    fn naive_region(&self, a: HostBufId, b: HostBufId, c: HostBufId) -> Region {
        let spec = RegionSpec::new(Schedule::static_(1, 1))
            .with_map(self.full_map("A", MapDir::To))
            .with_map(self.full_map("B", MapDir::To))
            .with_map(self.full_map("C", MapDir::From));
        Region::new(spec, 0, 1, vec![a, b, c])
    }

    fn gemm_kernel(
        &self,
        name: &'static str,
        bytes_per_flop_inv: u64,
    ) -> impl Fn(&ChunkCtx) -> KernelLaunch + 'static {
        let cfg = *self;
        let flops = cfg.total_flops();
        move |ctx: &ChunkCtx| {
            let (va, vb, vc) = (ctx.view(0), ctx.view(1), ctx.view(2));
            let n = cfg.n;
            KernelLaunch::new(
                name,
                KernelCost {
                    flops,
                    bytes: flops / bytes_per_flop_inv,
                },
                move |kc| {
                    // Full GEMM over direct views (rows are slices):
                    // borrow each matrix once, then run the blocked core
                    // as a single rank-n update over zeroed C.
                    let mut cw = kc.write_view(vc.slice_ptr(0))?;
                    let ar = kc.read_view(va.slice_ptr(0))?;
                    let br = kc.read_view(vb.slice_ptr(0))?;
                    let c = cw.slice_mut(vc.slice_ptr(0), n * n)?;
                    let a = ar.slice(va.slice_ptr(0), n * n)?;
                    let b = br.slice(vb.slice_ptr(0), n * n)?;
                    c.fill(0.0);
                    gemm_rank_update(c, n, a, n, b, n);
                    Ok(())
                },
            )
        }
    }

    /// Run the naive **baseline** version (one thread per `C` element).
    pub fn run_baseline(
        &self,
        gpu: &mut Gpu,
        a: HostBufId,
        b: HostBufId,
        c: HostBufId,
    ) -> RtResult<RunReport> {
        let region = self.naive_region(a, b, c);
        run_model(
            gpu,
            &region,
            &self.gemm_kernel("gemm_baseline", BASELINE_BYTES_PER_FLOP_INV),
            ExecModel::Naive,
            &RunOptions::default(),
        )
    }

    /// Run the **block-shared** version: tiled kernel, naive data
    /// movement.
    pub fn run_block_shared(
        &self,
        gpu: &mut Gpu,
        a: HostBufId,
        b: HostBufId,
        c: HostBufId,
    ) -> RtResult<RunReport> {
        let region = self.naive_region(a, b, c);
        run_model(
            gpu,
            &region,
            &self.gemm_kernel("gemm_block_shared", TILED_BYTES_PER_FLOP_INV),
            ExecModel::Naive,
            &RunOptions::default(),
        )
    }

    /// Region for the pipeline-buffer version: loop `l in 0..nblocks`
    /// over reduction blocks; `A` by column blocks (strided copies), `B`
    /// by row blocks (contiguous). `C` lives outside the maps.
    pub fn pipeline_region(&self, a: HostBufId, b: HostBufId) -> Region {
        let n = self.n;
        let bc = self.bc;
        let spec = RegionSpec::new(Schedule::static_(self.chunk, self.streams))
            .with_map(MapSpec {
                name: "A".into(),
                dir: MapDir::To,
                split: SplitSpec::ColBlocks {
                    offset: Affine { scale: 1, bias: 0 },
                    window: 1,
                    extent: self.nblocks(),
                    rows: n,
                    block_cols: bc,
                    row_stride: n,
                },
            })
            .with_map(MapSpec {
                name: "B".into(),
                dir: MapDir::To,
                split: SplitSpec::OneD {
                    offset: Affine {
                        scale: bc as i64,
                        bias: 0,
                    },
                    window: bc,
                    extent: n,
                    slice_elems: n,
                },
            });
        Region::new(spec, 0, self.nblocks() as i64, vec![a, b])
    }

    /// Run the **pipeline-buffer** version. `C` is pre-allocated on the
    /// device (zero-initialized), tasks accumulate rank-`bc` updates into
    /// it, and it is copied back once at the end.
    pub fn run_pipeline_buffer(
        &self,
        gpu: &mut Gpu,
        a: HostBufId,
        b: HostBufId,
        c: HostBufId,
    ) -> RtResult<RunReport> {
        let n = self.n;
        let bc = self.bc;
        let t0 = gpu.now();
        let c_dev: DevPtr = gpu.alloc(self.elems())?;
        // Zero the accumulator explicitly — a real cudaMalloc does not
        // zero memory, and the rank updates accumulate into C.
        gpu.memset_async(gpu.default_stream(), c_dev, self.elems(), 0.0)?;
        gpu.stream_synchronize(gpu.default_stream())?;
        let region = self.pipeline_region(a, b);

        let per_task_flops = 2 * (n as u64) * (n as u64) * bc as u64;
        let builder = move |ctx: &ChunkCtx| {
            let (l0, l1) = (ctx.k0, ctx.k1);
            let (va, vb) = (ctx.view(0), ctx.view(1));
            let flops = per_task_flops * (l1 - l0) as u64;
            KernelLaunch::new(
                "gemm_rank_update",
                KernelCost {
                    flops,
                    bytes: flops / TILED_BYTES_PER_FLOP_INV,
                },
                move |kc| {
                    // One borrow per array for the whole chunk; the A
                    // column block is addressed through its view with a
                    // stride instead of one `read` per matrix row.
                    let mut cw = kc.write_view(c_dev)?;
                    let ar = kc.read_view(va.base())?;
                    let br = kc.read_view(vb.base())?;
                    let c = cw.slice_mut(c_dev, n * n)?;
                    for l in l0..l1 {
                        let (a_ptr, a_stride) = va.block_ptr(l);
                        let a = ar.slice(a_ptr, (n - 1) * a_stride + bc)?;
                        // B rows l·bc .. (l+1)·bc are contiguous slices.
                        let b_rows = br.slice(vb.slice_ptr(l * bc as i64), bc * n)?;
                        gemm_rank_update(c, n, a, a_stride, b_rows, bc);
                    }
                    Ok(())
                },
            )
            .writing(c_dev, n * n)
        };

        let mut report = match run_model(
            gpu,
            &region,
            &builder,
            ExecModel::PipelinedBuffer,
            &RunOptions::default(),
        ) {
            Ok(r) => r,
            Err(e) => {
                let _ = gpu.free(c_dev);
                return Err(e);
            }
        };
        // Drain C (outside the pipeline maps, like the paper's deviceptr
        // buffer) and fold the copy into the measured region.
        gpu.memcpy_d2h(c_dev, self.elems(), c, 0)?;
        report.total = gpu.now() - t0;
        report.d2h = gpu.counters().d2h_time;
        report.d2h_bytes = gpu.counters().d2h_bytes;
        // The region snapshot already includes the C allocation (it was
        // live before the region ran); only the per-array accounting
        // needs the explicit addition.
        report.array_bytes += self.elems() as u64 * 4;
        gpu.free(c_dev)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{assert_exact, max_rel_error, read_host};
    use gpsim::{DeviceProfile, ExecMode};

    fn gpu() -> Gpu {
        Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap()
    }

    #[test]
    fn baseline_and_block_shared_match_cpu_exactly() {
        let cfg = MatmulConfig::test_small();
        let mut gpu = gpu();
        let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
        let expect = cfg.cpu_reference(&read_host(&gpu, a).unwrap(), &read_host(&gpu, b).unwrap());

        cfg.run_baseline(&mut gpu, a, b, c).unwrap();
        assert_exact(&read_host(&gpu, c).unwrap(), &expect, "baseline");

        gpu.host_fill(c, |_| 0.0).unwrap();
        cfg.run_block_shared(&mut gpu, a, b, c).unwrap();
        assert_exact(&read_host(&gpu, c).unwrap(), &expect, "block_shared");
    }

    #[test]
    fn pipeline_buffer_matches_cpu_within_fp_reassociation() {
        let cfg = MatmulConfig::test_small();
        let mut gpu = gpu();
        gpu.set_race_check(true);
        let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
        let expect = cfg.cpu_reference(&read_host(&gpu, a).unwrap(), &read_host(&gpu, b).unwrap());
        cfg.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
        let got = read_host(&gpu, c).unwrap();
        let err = max_rel_error(&got, &expect);
        assert!(err < 1e-4, "relative error {err}");
    }

    #[test]
    fn blocked_gemm_is_bit_identical_to_scalar() {
        // Odd n and a tiny j-block so the blocked core crosses several
        // seams; bc split into uneven ascending rank updates.
        let n = 21;
        let a: Vec<f32> = (0..n * n).map(|i| ((i * 37 + 11) % 97) as f32 * 0.17 - 5.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i * 53 + 29) % 89) as f32 * 0.23 - 7.0).collect();
        let mut expect = vec![0.0f32; n * n];
        gemm_scalar(&mut expect, &a, &b, n);
        let mut c = vec![0.0f32; n * n];
        for (k0, bc) in [(0usize, 7usize), (7, 7), (14, 7)] {
            let b_rows = &b[k0 * n..(k0 + bc) * n];
            gemm_rank_update_jb(&mut c, n, &a[k0..], n, b_rows, bc, 5);
        }
        assert_eq!(c, expect, "blocked i-k-j GEMM must be bit-exact");
    }

    #[test]
    fn pipeline_buffer_uses_about_one_third_of_memory() {
        // "it reduces memory use nearly 66%" — only C (plus small rings)
        // stays resident instead of all three matrices.
        let cfg = MatmulConfig {
            n: 512,
            bc: 8,
            chunk: 1,
            streams: 4,
        };
        let mut gpu = gpu();
        let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
        let base = cfg.run_baseline(&mut gpu, a, b, c).unwrap();
        let buf = cfg.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
        let ratio = buf.array_bytes as f64 / base.array_bytes as f64;
        assert!(
            (0.30..0.45).contains(&ratio),
            "expected ≈1/3 memory, got ratio {ratio}"
        );
    }

    #[test]
    fn block_shared_is_about_3x_baseline_in_kernel_time() {
        let cfg = MatmulConfig {
            n: 512,
            bc: 32,
            chunk: 1,
            streams: 4,
        };
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
        let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
        let base = cfg.run_baseline(&mut gpu, a, b, c).unwrap();
        let tiled = cfg.run_block_shared(&mut gpu, a, b, c).unwrap();
        let ratio = base.kernel.as_secs_f64() / tiled.kernel.as_secs_f64();
        assert!((2.5..3.5).contains(&ratio), "kernel ratio {ratio}");
    }
}

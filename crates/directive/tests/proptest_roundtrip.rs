//! Property tests of the directive parser: generated directives must
//! round-trip through the canonical printer, and binding must agree with
//! the generated shapes.

use pipeline_directive::parse_directive;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenMap {
    dir: &'static str,
    name: String,
    scale: i64,
    bias: i64,
    window: u64,
    dims: Vec<u64>,
}

fn map_strategy(idx: usize) -> impl Strategy<Value = GenMap> {
    (
        prop_oneof![Just("to"), Just("from"), Just("tofrom")],
        1i64..4,
        -4i64..5,
        1u64..5,
        proptest::collection::vec(1u64..64, 1..3),
    )
        .prop_map(move |(dir, scale, bias, window, dims)| GenMap {
            dir,
            name: format!("arr{idx}"),
            scale,
            bias,
            window,
            dims,
        })
}

fn directive_strategy() -> impl Strategy<Value = (u64, u64, Vec<GenMap>, Option<u64>)> {
    (
        1u64..16,
        1u64..8,
        proptest::collection::vec(any::<u8>(), 1..4).prop_flat_map(|v| {
            let n = v.len();
            let maps: Vec<_> = (0..n).map(map_strategy).collect();
            maps
        }),
        proptest::option::of(1u64..1_000_000),
    )
}

fn render(chunk: u64, streams: u64, maps: &[GenMap], mem: Option<u64>) -> String {
    let mut s = format!("pipeline(static[{chunk},{streams}])");
    for m in maps {
        let expr = match (m.scale, m.bias) {
            (1, 0) => "k".to_string(),
            (1, b) if b > 0 => format!("k+{b}"),
            (1, b) => format!("k-{}", -b),
            (a, 0) => format!("{a}*k"),
            (a, b) if b > 0 => format!("{a}*k+{b}"),
            (a, b) => format!("{a}*k-{}", -b),
        };
        s.push_str(&format!(" pipeline_map({}:{}[{expr}:{}]", m.dir, m.name, m.window));
        for d in &m.dims {
            s.push_str(&format!("[0:{d}]"));
        }
        s.push(')');
    }
    if let Some(v) = mem {
        s.push_str(&format!(" pipeline_mem_limit({v})"));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_directives_round_trip(
        (chunk, streams, maps, mem) in directive_strategy()
    ) {
        let src = render(chunk, streams, &maps, mem);
        let parsed = parse_directive(&src)
            .map_err(|e| TestCaseError::fail(format!("parse of {src:?}: {e}")))?;
        // Canonical print → reparse → identical AST.
        let printed = parsed.to_string();
        let reparsed = parse_directive(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse of {printed:?}: {e}")))?;
        prop_assert_eq!(&parsed, &reparsed, "round trip through {}", printed);

        // Structure is preserved.
        prop_assert_eq!(parsed.maps.len(), maps.len());
        prop_assert_eq!(parsed.mem_limit, mem);
        for (p, g) in parsed.maps.iter().zip(&maps) {
            prop_assert_eq!(&p.name, &g.name);
            prop_assert_eq!(p.dims.len(), g.dims.len() + 1);
        }

        // Binding derives the right slice sizes.
        let spec = parsed
            .to_region_spec(|_| Some(1024))
            .map_err(|e| TestCaseError::fail(format!("bind of {src:?}: {e}")))?;
        for (m, g) in spec.maps.iter().zip(&maps) {
            let expect: u64 = g.dims.iter().product();
            prop_assert_eq!(m.split.slice_elems() as u64, expect);
            prop_assert_eq!(m.split.window() as u64, g.window);
        }
    }

    /// The parser never panics on arbitrary input (errors are values).
    #[test]
    fn parser_is_panic_free(src in "[ -~]{0,120}") {
        let _ = parse_directive(&src);
    }

    /// ...including inputs made of grammar-adjacent tokens.
    #[test]
    fn parser_is_panic_free_on_tokenish_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("pipeline"), Just("pipeline_map"), Just("pipeline_mem_limit"),
                Just("static"), Just("adaptive"), Just("to"), Just("from"),
                Just("tofrom"), Just("("), Just(")"), Just("["), Just("]"),
                Just(":"), Just(","), Just("+"), Just("-"), Just("*"),
                Just("k"), Just("A"), Just("7"), Just("MB_256"), Just(" "),
            ],
            0..40,
        )
    ) {
        let src: String = parts.concat();
        let _ = parse_directive(&src);
    }
}

//! Parser integration tests, anchored on the paper's own examples.

use pipeline_directive::{parse_directive, DimSection};
use pipeline_rt::{Affine, MapDir, Schedule, SplitSpec};

/// The exact directive of the paper's Figure 2 (stencil benchmark).
const FIGURE2: &str = "#pragma omp target \
    pipeline(static[1,3]) \
    pipeline_map(to:A0[k-1:3][0:127][0:127]) \
    pipeline_map(from:Anext[k:1][0:127][0:127]) \
    pipeline_mem_limit(MB_256)";

#[test]
fn figure2_stencil_directive_parses() {
    let d = parse_directive(FIGURE2).unwrap();
    assert_eq!(
        d.schedule,
        Schedule::Static {
            chunk_size: 1,
            num_streams: 3
        }
    );
    assert_eq!(d.mem_limit, Some(256 << 20));
    assert_eq!(d.maps.len(), 2);

    let a0 = &d.maps[0];
    assert_eq!(a0.name, "A0");
    assert_eq!(a0.dir, MapDir::To);
    assert_eq!(
        a0.dims[0],
        DimSection::Split {
            var: "k".into(),
            affine: Affine {
                scale: 1,
                bias: -1
            },
            len: 3
        }
    );
    assert_eq!(a0.dims[1], DimSection::Fixed { lo: 0, len: 127 });

    let anext = &d.maps[1];
    assert_eq!(anext.dir, MapDir::From);
    assert_eq!(
        anext.dims[0],
        DimSection::Split {
            var: "k".into(),
            affine: Affine { scale: 1, bias: 0 },
            len: 1
        }
    );
}

#[test]
fn figure2_binds_to_region_spec() {
    let d = parse_directive(FIGURE2).unwrap();
    let spec = d.to_region_spec(|_| Some(130)).unwrap();
    assert_eq!(spec.mem_limit, Some(256 << 20));
    match &spec.maps[0].split {
        SplitSpec::OneD {
            offset,
            window,
            extent,
            slice_elems,
        } => {
            assert_eq!(*offset, Affine::shifted(-1));
            assert_eq!(*window, 3);
            assert_eq!(*extent, 130);
            assert_eq!(*slice_elems, 127 * 127);
        }
        other => panic!("wrong split: {other:?}"),
    }
}

#[test]
fn column_split_binds_to_col_blocks() {
    // Matrix B split by columns of 32, as in the GEMM pipeline-buffer
    // version (paper §V-E): blocks of all n rows.
    let d = parse_directive(
        "pipeline(static[1,4]) pipeline_map(to:B[0:1024][32*k:32])",
    )
    .unwrap();
    let spec = d.to_region_spec(|_| Some(32)).unwrap(); // 32 blocks
    match &spec.maps[0].split {
        SplitSpec::ColBlocks {
            offset,
            window,
            extent,
            rows,
            block_cols,
            row_stride,
        } => {
            assert_eq!(*offset, Affine { scale: 1, bias: 0 }); // block units
            assert_eq!(*window, 1);
            assert_eq!(*extent, 32);
            assert_eq!(*rows, 1024);
            assert_eq!(*block_cols, 32);
            assert_eq!(*row_stride, 1024);
        }
        other => panic!("wrong split: {other:?}"),
    }
}

#[test]
fn misaligned_column_split_is_rejected() {
    let d = parse_directive(
        "pipeline(static[1,4]) pipeline_map(to:B[0:64][32*k+7:32])",
    )
    .unwrap();
    let err = d.to_region_spec(|_| Some(8)).unwrap_err();
    assert!(err.to_string().contains("block-aligned"), "{err}");
}

#[test]
fn adaptive_schedule_parses() {
    let d = parse_directive("pipeline(adaptive) pipeline_map(to:A[k:1][0:8])").unwrap();
    assert_eq!(d.schedule, Schedule::Adaptive);
}

#[test]
fn mem_limit_unit_forms() {
    for (src, expect) in [
        ("pipeline_mem_limit(1024)", 1024u64),
        ("pipeline_mem_limit(64KB)", 64 << 10),
        ("pipeline_mem_limit(256MB)", 256 << 20),
        ("pipeline_mem_limit(2GB)", 2 << 30),
        ("pipeline_mem_limit(KB_512)", 512 << 10),
        ("pipeline_mem_limit(GB_1)", 1 << 30),
    ] {
        let full = format!("pipeline(static[1,1]) pipeline_map(to:A[k:1][0:8]) {src}");
        let d = parse_directive(&full).unwrap();
        assert_eq!(d.mem_limit, Some(expect), "{src}");
    }
}

#[test]
fn affine_expression_forms() {
    for (expr, scale, bias) in [
        ("k", 1, 0),
        ("k+2", 1, 2),
        ("k-3", 1, -3),
        ("2*k", 2, 0),
        ("k*2", 2, 0),
        ("4*k+1", 4, 1),
        ("k*4-1", 4, -1),
    ] {
        let src = format!("pipeline(static[1,1]) pipeline_map(to:A[{expr}:1][0:8])");
        let d = parse_directive(&src).unwrap();
        match &d.maps[0].dims[0] {
            DimSection::Split { affine, .. } => {
                assert_eq!((affine.scale, affine.bias), (scale, bias), "{expr}");
            }
            other => panic!("{expr} parsed as {other:?}"),
        }
    }
}

#[test]
fn error_cases_have_useful_messages() {
    let cases: &[(&str, &str)] = &[
        ("pipeline(static[1,3])", "missing pipeline_map"),
        ("pipeline_map(to:A[k:1][0:8])", "missing pipeline()"),
        (
            "pipeline(static[0,3]) pipeline_map(to:A[k:1][0:8])",
            "must be ≥ 1",
        ),
        (
            "pipeline(dynamic[1,3]) pipeline_map(to:A[k:1][0:8])",
            "unknown schedule_kind",
        ),
        (
            "pipeline(static[1,3]) pipeline_map(inout:A[k:1][0:8])",
            "unknown map_type",
        ),
        (
            "pipeline(static[1,3]) pipeline_map(to:A)",
            "at least one",
        ),
        (
            "pipeline(static[1,3]) pipeline_map(to:A[0:8])",
            "no split dimension",
        ),
        (
            "pipeline(static[1,3]) pipeline(static[1,3]) pipeline_map(to:A[k:1][0:8])",
            "duplicate pipeline()",
        ),
        (
            "pipelin(static[1,3]) pipeline_map(to:A[k:1][0:8])",
            "unknown clause",
        ),
    ];
    for (src, needle) in cases {
        let err = parse_directive(src)
            .and_then(|d| d.to_region_spec(|_| Some(16)))
            .unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "source {src:?}: expected {needle:?} in {err}"
        );
    }
}

#[test]
fn two_loop_variables_rejected() {
    let d = parse_directive(
        "pipeline(static[1,1]) pipeline_map(to:A[k:1][0:8]) pipeline_map(to:B[j:1][0:8])",
    )
    .unwrap();
    let err = d.loop_var().unwrap_err();
    assert!(err.to_string().contains("one split_iter"), "{err}");
}

#[test]
fn missing_extent_is_reported_with_array_name() {
    let d = parse_directive("pipeline(static[1,1]) pipeline_map(to:Zed[k:1][0:8])").unwrap();
    let err = d.to_region_spec(|_| None).unwrap_err();
    assert!(err.to_string().contains("Zed"));
}

#[test]
fn bound_spec_validates_against_loop_range() {
    // End-to-end: parse, bind, validate with pipeline_rt.
    let d = parse_directive(FIGURE2).unwrap();
    let spec = d.to_region_spec(|_| Some(64)).unwrap();
    assert!(spec.validate(1, 63).is_ok());
    assert!(spec.validate(0, 63).is_err(), "k=0 touches slice -1");
}

//! # pipeline-directive — parser for the paper's clause syntax
//!
//! Parses the directive extension proposed in *Directive-Based
//! Partitioning and Pipelining for Graphics Processing Units* (IPDPS
//! 2017, Figure 1) into the typed region specifications of
//! [`pipeline_rt`]:
//!
//! ```
//! use pipeline_directive::parse_directive;
//!
//! let parsed = parse_directive(
//!     "#pragma omp target \
//!      pipeline(static[1,3]) \
//!      pipeline_map(to:A0[k-1:3][0:64][0:64]) \
//!      pipeline_map(from:Anext[k:1][0:64][0:64]) \
//!      pipeline_mem_limit(MB_256)",
//! ).unwrap();
//!
//! assert_eq!(parsed.maps.len(), 2);
//! assert_eq!(parsed.mem_limit, Some(256 << 20));
//! assert_eq!(parsed.loop_var().unwrap(), "k");
//!
//! // Bind to a typed RegionSpec by providing each array's split-dim extent.
//! let spec = parsed.to_region_spec(|name| match name {
//!     "A0" | "Anext" => Some(66),
//!     _ => None,
//! }).unwrap();
//! assert_eq!(spec.maps[0].split.window(), 3);
//! assert_eq!(spec.maps[0].split.slice_elems(), 64 * 64);
//! ```
//!
//! The prototype in the paper passes all parameters explicitly to its
//! runtime; the directive text is the user-facing surface. Likewise here:
//! this crate produces a [`pipeline_rt::RegionSpec`], and execution goes
//! through the `pipeline_rt` drivers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod parse;
mod print;
mod token;

pub use error::{ParseError, ParseResult};
pub use parse::{parse_directive, DimSection, ParsedDirective, ParsedMap};
pub use token::{tokenize, Token, TokenKind};

//! Recursive-descent parser for the clause grammar, and binding of the
//! parsed form to a typed [`RegionSpec`].
//!
//! Grammar (Figure 1 of the paper):
//!
//! ```text
//! directive  := clause+
//! clause     := 'pipeline' '(' schedule ')'
//!             | 'pipeline_map' '(' map_type ':' array ')'
//!             | 'pipeline_mem_limit' '(' mem ')'
//! schedule   := 'static' '[' number ',' number ']' | 'adaptive'
//! map_type   := 'to' | 'from' | 'tofrom'
//! array      := ident section+
//! section    := '[' expr ':' number ']'
//! expr       := affine expression over one loop variable, or a constant
//! mem        := number unit? | UNIT '_' number   (e.g. 256MB, MB_256)
//! ```
//!
//! Sections follow OpenMP array-section semantics: `[start : length]`.
//! A section whose start expression mentions the loop variable is the
//! *split* dimension; the paper allows exactly one loop variable per
//! region.

use pipeline_rt::{Affine, MapDir, MapSpec, RegionSpec, Schedule, SplitSpec};

use crate::error::{ParseError, ParseResult};
use crate::token::{tokenize, Token, TokenKind};

/// One `[start : length]` array section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimSection {
    /// Start expression mentions the loop variable: this is the split
    /// dimension, with the given affine start and window length.
    Split {
        /// Loop variable name.
        var: String,
        /// Affine start offset as a function of the loop variable.
        affine: Affine,
        /// Window length (the paper's `size`).
        len: u64,
    },
    /// Constant section `[lo : len]`.
    Fixed {
        /// Constant start.
        lo: u64,
        /// Length.
        len: u64,
    },
}

impl DimSection {
    /// Length of the section.
    pub fn len(&self) -> u64 {
        match self {
            DimSection::Split { len, .. } | DimSection::Fixed { len, .. } => *len,
        }
    }

    /// True for zero-length sections (always a spec error downstream).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One parsed `pipeline_map` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedMap {
    /// Transfer direction.
    pub dir: MapDir,
    /// Array name.
    pub name: String,
    /// Array sections, outermost first.
    pub dims: Vec<DimSection>,
    /// Byte position of the clause (for binding errors).
    pub pos: usize,
}

/// A fully parsed directive (all clauses).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDirective {
    /// Schedule from the `pipeline(...)` clause.
    pub schedule: Schedule,
    /// All `pipeline_map(...)` clauses, in source order.
    pub maps: Vec<ParsedMap>,
    /// Memory ceiling in bytes, if `pipeline_mem_limit` was present.
    pub mem_limit: Option<u64>,
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.i).map(|t| &t.kind)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|t| t.pos).unwrap_or(self.src_len)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> ParseResult<()> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ParseError::new(
                t.pos,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            )),
            None => Err(ParseError::new(
                self.src_len,
                format!("expected {}, found end of directive", kind.describe()),
            )),
        }
    }

    fn expect_number(&mut self) -> ParseResult<u64> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(n),
            Some(t) => Err(ParseError::new(
                t.pos,
                format!("expected a number, found {}", t.kind.describe()),
            )),
            None => Err(ParseError::new(self.src_len, "expected a number")),
        }
    }

    fn expect_ident(&mut self) -> ParseResult<(usize, String)> {
        match self.next() {
            Some(Token {
                pos,
                kind: TokenKind::Ident(s),
            }) => Ok((pos, s)),
            Some(t) => Err(ParseError::new(
                t.pos,
                format!("expected an identifier, found {}", t.kind.describe()),
            )),
            None => Err(ParseError::new(self.src_len, "expected an identifier")),
        }
    }

    fn parse_directive(&mut self) -> ParseResult<ParsedDirective> {
        let mut schedule: Option<Schedule> = None;
        let mut maps = Vec::new();
        let mut mem_limit: Option<u64> = None;

        while self.peek().is_some() {
            let (pos, clause) = self.expect_ident()?;
            match clause.as_str() {
                "pipeline" => {
                    if schedule.is_some() {
                        return Err(ParseError::new(pos, "duplicate pipeline() clause"));
                    }
                    self.expect(&TokenKind::LParen)?;
                    schedule = Some(self.parse_schedule()?);
                    self.expect(&TokenKind::RParen)?;
                }
                "pipeline_map" => {
                    self.expect(&TokenKind::LParen)?;
                    maps.push(self.parse_map(pos)?);
                    self.expect(&TokenKind::RParen)?;
                }
                "pipeline_mem_limit" => {
                    if mem_limit.is_some() {
                        return Err(ParseError::new(pos, "duplicate pipeline_mem_limit() clause"));
                    }
                    self.expect(&TokenKind::LParen)?;
                    mem_limit = Some(self.parse_mem()?);
                    self.expect(&TokenKind::RParen)?;
                }
                other => {
                    return Err(ParseError::new(
                        pos,
                        format!("unknown clause '{other}' (expected pipeline, pipeline_map or pipeline_mem_limit)"),
                    ));
                }
            }
        }

        let schedule = schedule
            .ok_or_else(|| ParseError::new(self.src_len, "missing pipeline() clause"))?;
        if maps.is_empty() {
            return Err(ParseError::new(
                self.src_len,
                "missing pipeline_map() clause",
            ));
        }
        Ok(ParsedDirective {
            schedule,
            maps,
            mem_limit,
        })
    }

    fn parse_schedule(&mut self) -> ParseResult<Schedule> {
        let (pos, kind) = self.expect_ident()?;
        match kind.as_str() {
            "static" => {
                self.expect(&TokenKind::LBracket)?;
                let chunk = self.expect_number()?;
                self.expect(&TokenKind::Comma)?;
                let streams = self.expect_number()?;
                self.expect(&TokenKind::RBracket)?;
                if chunk == 0 || streams == 0 {
                    return Err(ParseError::new(
                        pos,
                        "chunk_size and num_stream must be ≥ 1",
                    ));
                }
                Ok(Schedule::static_(chunk as usize, streams as usize))
            }
            "adaptive" => Ok(Schedule::Adaptive),
            other => Err(ParseError::new(
                pos,
                format!("unknown schedule_kind '{other}' (expected static or adaptive)"),
            )),
        }
    }

    fn parse_map(&mut self, pos: usize) -> ParseResult<ParsedMap> {
        let (dpos, dir) = self.expect_ident()?;
        let dir = match dir.as_str() {
            "to" => MapDir::To,
            "from" => MapDir::From,
            "tofrom" => MapDir::ToFrom,
            other => {
                return Err(ParseError::new(
                    dpos,
                    format!("unknown map_type '{other}' (expected to, from or tofrom)"),
                ));
            }
        };
        self.expect(&TokenKind::Colon)?;
        let (_, name) = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.peek() == Some(&TokenKind::LBracket) {
            dims.push(self.parse_section()?);
        }
        if dims.is_empty() {
            return Err(ParseError::new(
                self.pos(),
                format!("array '{name}' needs at least one [start:length] section"),
            ));
        }
        Ok(ParsedMap {
            dir,
            name,
            dims,
            pos,
        })
    }

    /// `[` expr `:` number `]`
    fn parse_section(&mut self) -> ParseResult<DimSection> {
        self.expect(&TokenKind::LBracket)?;
        let start = self.parse_start_expr()?;
        self.expect(&TokenKind::Colon)?;
        let len = self.expect_number()?;
        self.expect(&TokenKind::RBracket)?;
        Ok(match start {
            StartExpr::Const(lo) => DimSection::Fixed { lo, len },
            StartExpr::Affine { var, affine } => DimSection::Split { var, affine, len },
        })
    }

    /// Affine start expression: `c`, `k`, `k±c`, `a*k`, `k*a`, `a*k±c`,
    /// `k*a±c`.
    fn parse_start_expr(&mut self) -> ParseResult<StartExpr> {
        let pos = self.pos();
        // First term: number, var, number*var, or var*number.
        let var: Option<String>;
        let scale: i64;
        let mut bias: i64;
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => {
                if self.peek() == Some(&TokenKind::Star) {
                    self.next();
                    let (_, v) = self.expect_ident()?;
                    var = Some(v);
                    scale = n as i64;
                    bias = 0;
                } else {
                    var = None;
                    scale = 0;
                    bias = n as i64;
                }
            }
            Some(Token {
                kind: TokenKind::Ident(v),
                ..
            }) => {
                var = Some(v);
                if self.peek() == Some(&TokenKind::Star) {
                    self.next();
                    scale = self.expect_number()? as i64;
                } else {
                    scale = 1;
                }
                bias = 0;
            }
            other => {
                let p = other.map(|t| t.pos).unwrap_or(self.src_len);
                return Err(ParseError::new(p, "expected a start expression"));
            }
        }
        // Optional ± constant.
        match self.peek() {
            Some(TokenKind::Plus) => {
                self.next();
                bias += self.expect_number()? as i64;
            }
            Some(TokenKind::Minus) => {
                self.next();
                bias -= self.expect_number()? as i64;
            }
            _ => {}
        }
        Ok(match var {
            Some(var) => {
                if scale == 0 {
                    return Err(ParseError::new(pos, "split_iter scale must be non-zero"));
                }
                StartExpr::Affine {
                    var,
                    affine: Affine { scale, bias },
                }
            }
            None => {
                if bias < 0 {
                    return Err(ParseError::new(pos, "constant section start must be ≥ 0"));
                }
                StartExpr::Const(bias as u64)
            }
        })
    }

    /// Memory size: `N` (bytes), `N KB|MB|GB` (also lexed from `256MB`),
    /// or the paper's `MB_256` form.
    fn parse_mem(&mut self) -> ParseResult<u64> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                pos,
            }) => {
                if let Some(TokenKind::Ident(unit)) = self.peek() {
                    let mult = unit_multiplier(unit)
                        .ok_or_else(|| ParseError::new(pos, format!("unknown unit '{unit}'")))?;
                    self.next();
                    Ok(n * mult)
                } else {
                    Ok(n)
                }
            }
            Some(Token {
                kind: TokenKind::Ident(s),
                pos,
            }) => {
                // `MB_256` form.
                let (unit, value) = s
                    .split_once('_')
                    .ok_or_else(|| ParseError::new(pos, format!("bad memory size '{s}'")))?;
                let mult = unit_multiplier(unit)
                    .ok_or_else(|| ParseError::new(pos, format!("unknown unit '{unit}'")))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| ParseError::new(pos, format!("bad memory value '{value}'")))?;
                Ok(n * mult)
            }
            other => {
                let p = other.map(|t| t.pos).unwrap_or(self.src_len);
                Err(ParseError::new(p, "expected a memory size"))
            }
        }
    }
}

enum StartExpr {
    Const(u64),
    Affine { var: String, affine: Affine },
}

fn unit_multiplier(unit: &str) -> Option<u64> {
    match unit.to_ascii_uppercase().as_str() {
        "B" => Some(1),
        "KB" => Some(1 << 10),
        "MB" => Some(1 << 20),
        "GB" => Some(1 << 30),
        _ => None,
    }
}

/// Parse a full directive string.
pub fn parse_directive(src: &str) -> ParseResult<ParsedDirective> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        src_len: src.len(),
    };
    p.parse_directive()
}

impl ParsedDirective {
    /// The loop variable used by the split sections (validated unique).
    pub fn loop_var(&self) -> ParseResult<String> {
        let mut found: Option<String> = None;
        for m in &self.maps {
            for d in &m.dims {
                if let DimSection::Split { var, .. } = d {
                    match &found {
                        None => found = Some(var.clone()),
                        Some(v) if v == var => {}
                        Some(v) => {
                            return Err(ParseError::new(
                                m.pos,
                                format!(
                                    "multiple loop variables '{v}' and '{var}': the paper's \
                                     extension allows one split_iter per region"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        found.ok_or_else(|| ParseError::new(0, "no split dimension in any pipeline_map"))
    }

    /// Bind to a typed [`RegionSpec`]. `extent_of(name)` must return the
    /// number of slices (1-D splits) or blocks (column splits) of each
    /// mapped array's split dimension.
    pub fn to_region_spec(
        &self,
        extent_of: impl Fn(&str) -> Option<usize>,
    ) -> ParseResult<RegionSpec> {
        self.loop_var()?; // validates uniqueness
        let mut spec = RegionSpec::new(self.schedule);
        spec.mem_limit = self.mem_limit;
        for m in &self.maps {
            let extent = extent_of(&m.name).ok_or_else(|| {
                ParseError::new(m.pos, format!("no extent provided for array '{}'", m.name))
            })?;
            let split_positions: Vec<usize> = m
                .dims
                .iter()
                .enumerate()
                .filter(|(_, d)| matches!(d, DimSection::Split { .. }))
                .map(|(i, _)| i)
                .collect();
            let split = match split_positions.as_slice() {
                [] => {
                    return Err(ParseError::new(
                        m.pos,
                        format!("array '{}' has no split dimension", m.name),
                    ));
                }
                [0] => {
                    // Outermost split: 1-D contiguous slices.
                    let DimSection::Split { affine, len, .. } = &m.dims[0] else {
                        unreachable!()
                    };
                    let slice_elems: u64 = m.dims[1..].iter().map(DimSection::len).product();
                    if slice_elems == 0 || *len == 0 {
                        return Err(ParseError::new(
                            m.pos,
                            format!("array '{}' has a zero-length section", m.name),
                        ));
                    }
                    SplitSpec::OneD {
                        offset: *affine,
                        window: *len as usize,
                        extent,
                        slice_elems: slice_elems as usize,
                    }
                }
                [1] if m.dims.len() == 2 => {
                    // Column-block split of a row-major matrix.
                    let rows = m.dims[0].len() as usize;
                    let DimSection::Split { affine, len, .. } = &m.dims[1] else {
                        unreachable!()
                    };
                    let bc = *len as usize;
                    if rows == 0 || bc == 0 {
                        return Err(ParseError::new(
                            m.pos,
                            format!("array '{}' has a zero-length section", m.name),
                        ));
                    }
                    if affine.scale % bc as i64 != 0 || affine.bias % bc as i64 != 0 {
                        return Err(ParseError::new(
                            m.pos,
                            format!(
                                "array '{}': column split start must be block-aligned \
                                 (multiple of {bc})",
                                m.name
                            ),
                        ));
                    }
                    SplitSpec::ColBlocks {
                        offset: Affine {
                            scale: affine.scale / bc as i64,
                            bias: affine.bias / bc as i64,
                        },
                        window: 1,
                        extent,
                        rows,
                        block_cols: bc,
                        row_stride: extent * bc,
                    }
                }
                _ => {
                    return Err(ParseError::new(
                        m.pos,
                        format!(
                            "array '{}': unsupported split shape (supported: outermost-dimension \
                             split, or column split of a 2-D array)",
                            m.name
                        ),
                    ));
                }
            };
            spec.maps.push(MapSpec {
                name: m.name.clone(),
                dir: m.dir,
                split,
            });
        }
        Ok(spec)
    }
}

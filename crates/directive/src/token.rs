//! Tokenizer for the directive clause syntax of the paper's Figure 1:
//!
//! ```text
//! #pragma omp target \
//!     pipeline(static[1,3]) \
//!     pipeline_map(to:A0[k-1:3][0:ny-1][0:nx-1]) \
//!     pipeline_mem_limit(MB_256)
//! ```
//!
//! Line continuations (`\`) and the `#pragma omp target` prefix are
//! handled here so the parser sees a flat token stream.

use crate::error::{ParseError, ParseResult};

/// One lexical token with its byte offset in the source (for errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the token start.
    pub pos: usize,
    /// Token payload.
    pub kind: TokenKind,
}

/// Token kinds of the clause grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`pipeline`, `static`, `A0`, `k`, `MB_256`).
    Ident(String),
    /// Unsigned integer literal.
    Number(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
}

impl TokenKind {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::LBracket => "'['".into(),
            TokenKind::RBracket => "']'".into(),
            TokenKind::Colon => "':'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::Plus => "'+'".into(),
            TokenKind::Minus => "'-'".into(),
            TokenKind::Star => "'*'".into(),
        }
    }
}

/// Tokenize a directive string. Strips an optional `#pragma omp target`
/// prefix and backslash line continuations.
pub fn tokenize(src: &str) -> ParseResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;

    // Skip an optional `#pragma omp target` prefix.
    let trimmed = src.trim_start();
    if let Some(rest) = trimmed.strip_prefix('#') {
        let off = src.len() - trimmed.len();
        let rest_trim = rest.trim_start();
        if let Some(after) = rest_trim.strip_prefix("pragma") {
            let after_trim = after.trim_start();
            if let Some(after_omp) = after_trim.strip_prefix("omp") {
                let after_omp_trim = after_omp.trim_start();
                if let Some(after_target) = after_omp_trim.strip_prefix("target") {
                    i = src.len() - after_target.len();
                } else {
                    return Err(ParseError::new(off, "expected 'target' after '#pragma omp'"));
                }
            } else {
                return Err(ParseError::new(off, "expected 'omp' after '#pragma'"));
            }
        } else {
            return Err(ParseError::new(off, "expected 'pragma' after '#'"));
        }
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' | '\\' => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::LBracket,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::RBracket,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::Colon,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::Plus,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::Minus,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    pos: i,
                    kind: TokenKind::Star,
                });
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: u64 = text
                    .parse()
                    .map_err(|_| ParseError::new(start, format!("number '{text}' out of range")))?;
                out.push(Token {
                    pos: start,
                    kind: TokenKind::Number(n),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    pos: start,
                    kind: TokenKind::Ident(src[start..i].to_string()),
                });
            }
            other => {
                return Err(ParseError::new(i, format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("pipeline(static[1,3])"),
            vec![
                TokenKind::Ident("pipeline".into()),
                TokenKind::LParen,
                TokenKind::Ident("static".into()),
                TokenKind::LBracket,
                TokenKind::Number(1),
                TokenKind::Comma,
                TokenKind::Number(3),
                TokenKind::RBracket,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn pragma_prefix_and_continuations() {
        let src = "#pragma omp target \\\n pipeline(static[1,3])";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("pipeline".into()));
    }

    #[test]
    fn arithmetic_tokens() {
        assert_eq!(
            kinds("k-1 2*k+3"),
            vec![
                TokenKind::Ident("k".into()),
                TokenKind::Minus,
                TokenKind::Number(1),
                TokenKind::Number(2),
                TokenKind::Star,
                TokenKind::Ident("k".into()),
                TokenKind::Plus,
                TokenKind::Number(3),
            ]
        );
    }

    #[test]
    fn bad_pragma_is_rejected() {
        assert!(tokenize("#pragma acc target pipeline(static[1,1])").is_err());
        assert!(tokenize("# nonsense").is_err());
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = tokenize("pipeline(static[1;3])").unwrap_err();
        assert_eq!(err.pos, 17);
        assert!(err.to_string().contains("';'"));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = tokenize("ab (cd)").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 4);
    }
}

//! Parse error type with source positions.

use std::fmt;

/// A directive parse (or binding) error, with the byte offset where it
/// was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the directive source (0 for binding-time errors
    /// without a position).
    pub pos: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(pos: usize, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "directive parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parser operations.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(42, "boom");
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("boom"));
    }
}

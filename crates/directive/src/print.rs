//! Canonical pretty-printing of parsed directives (used by round-trip
//! property tests and diagnostics).

use std::fmt;

use pipeline_rt::Schedule;

use crate::parse::{DimSection, ParsedDirective, ParsedMap};

impl fmt::Display for DimSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimSection::Fixed { lo, len } => write!(f, "[{lo}:{len}]"),
            DimSection::Split { var, affine, len } => {
                write!(f, "[")?;
                match (affine.scale, affine.bias) {
                    (1, 0) => write!(f, "{var}")?,
                    (1, b) if b > 0 => write!(f, "{var}+{b}")?,
                    (1, b) => write!(f, "{var}-{}", -b)?,
                    (s, 0) => write!(f, "{s}*{var}")?,
                    (s, b) if b > 0 => write!(f, "{s}*{var}+{b}")?,
                    (s, b) => write!(f, "{s}*{var}-{}", -b)?,
                }
                write!(f, ":{len}]")
            }
        }
    }
}

impl fmt::Display for ParsedMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.dir {
            pipeline_rt::MapDir::To => "to",
            pipeline_rt::MapDir::From => "from",
            pipeline_rt::MapDir::ToFrom => "tofrom",
        };
        write!(f, "pipeline_map({dir}:{}", self.name)?;
        for d in &self.dims {
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for ParsedDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.schedule {
            Schedule::Static {
                chunk_size,
                num_streams,
            } => write!(f, "pipeline(static[{chunk_size},{num_streams}])")?,
            Schedule::Adaptive => write!(f, "pipeline(adaptive)")?,
        }
        for m in &self.maps {
            write!(f, " {m}")?;
        }
        if let Some(limit) = self.mem_limit {
            write!(f, " pipeline_mem_limit({limit})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_directive;

    #[test]
    fn canonical_form_round_trips() {
        let src = "pipeline(static[2,4]) \
                   pipeline_map(to:A0[k-1:3][0:64][0:64]) \
                   pipeline_map(from:Anext[k:1][0:64][0:64]) \
                   pipeline_mem_limit(MB_256)";
        let parsed = parse_directive(src).unwrap();
        let printed = parsed.to_string();
        let reparsed = parse_directive(&printed).unwrap();
        assert_eq!(parsed, reparsed);
        assert!(printed.contains("pipeline_mem_limit(268435456)"));
    }

    #[test]
    fn affine_forms_print_readably() {
        for (expr, expect) in [
            ("k", "[k:2]"),
            ("k+5", "[k+5:2]"),
            ("k-5", "[k-5:2]"),
            ("3*k", "[3*k:2]"),
            ("3*k+1", "[3*k+1:2]"),
            ("3*k-1", "[3*k-1:2]"),
        ] {
            let src = format!("pipeline(static[1,1]) pipeline_map(to:A[{expr}:2][0:4])");
            let parsed = parse_directive(&src).unwrap();
            assert!(
                parsed.maps[0].to_string().contains(expect),
                "{expr} printed as {}",
                parsed.maps[0]
            );
        }
    }
}

//! # dbpp-core — the finalized public API
//!
//! One import surface over the whole runtime stack. Applications and
//! examples should depend on this crate and reach everything through
//! [`prelude`]:
//!
//! ```
//! use dbpp_core::prelude::*;
//! ```
//!
//! The full `pipeline_rt` surface is re-exported at the crate root for
//! anything the prelude deliberately leaves out (trace tooling, plan
//! internals, sweep helpers), and the serving layer is available as
//! [`serve`].

pub use pipeline_rt::*;

/// The multi-tenant serving layer ([`pipeline_serve`]).
pub use pipeline_serve as serve;

/// The curated stable surface: everything a typical pipeline
/// application needs, importable in one line.
pub mod prelude {
    // Entry points.
    pub use pipeline_rt::{run_model, run_model_multi, run_window_fn};
    // The pipeline description and its pieces.
    pub use pipeline_rt::{
        Affine, ChunkCtx, KernelBuilder, MapDir, MapSpec, Pipeline, Region, RegionSpec, Schedule,
        SplitSpec,
    };
    // Options and policies.
    pub use pipeline_rt::{
        BufferOptions, ExecModel, MultiOptions, PipelinedOptions, RetryPolicy, RunOptions,
        StreamAssignment, TuneSpace,
    };
    // Results and errors.
    pub use pipeline_rt::{MultiReport, RtError, RtResult, RunReport};
    // Preemptible execution.
    pub use pipeline_rt::{JobReport, ResumableRun};
    // Serving: the server, its policies (admission, queue order,
    // breaker) and the report types.
    pub use pipeline_serve::{
        serve, BreakerConfig, Fleet, JobShape, JobSpec, QueueOrder, RateLimit, Rejection,
        ServeOptions, ServeReport, TenantSpec, WorkloadConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable_and_usable() {
        use crate::prelude::*;
        // A couple of representative items, touched so the re-exports
        // are proven live, not just name-resolvable.
        let opts = RunOptions::default().with_retry(RetryPolicy::retries(1));
        let _ = opts;
        let model: ExecModel = ExecModel::PipelinedBuffer;
        assert_eq!(format!("{model:?}"), "PipelinedBuffer");
        let w = WorkloadConfig::new(7, 3, 2);
        assert_eq!(w.generate().len(), 3);
    }
}

//! # dbpp — Directive-Based Partitioning and Pipelining for GPUs
//!
//! A complete Rust reproduction of
//! *Directive-Based Partitioning and Pipelining for Graphics Processing
//! Units* (Xuewen Cui, Thomas R. W. Scogland, Bronis R. de Supinski,
//! Wu-chun Feng — IEEE IPDPS 2017, DOI 10.1109/IPDPS.2017.96), built
//! over a discrete-event GPU simulator so it runs anywhere.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`sim`] ([`gpsim`]) — the simulated device: memory, streams,
//!   events, copy/compute engines, calibrated K40m/HD 7970 cost models.
//! * [`rt`] ([`pipeline_rt`]) — the paper's contribution: the
//!   partitioning/pipelining runtime with its Naive, Pipelined and
//!   Pipelined-buffer drivers, plus the §VII extensions (adaptive
//!   schedules, function-based dependencies, multi-device co-scheduling,
//!   autotuning).
//! * [`directive`] ([`pipeline_directive`]) — the clause-syntax parser
//!   (`pipeline(static[1,3]) pipeline_map(to:A0[k-1:3][0:ny][0:nx]) ...`).
//! * [`apps`] ([`pipeline_apps`]) — the four evaluation applications:
//!   3-D convolution, Parboil-style stencil, matrix multiplication, and
//!   a Lattice QCD proxy.
//! * [`serve`] ([`pipeline_serve`]) — the multi-tenant job server:
//!   fair-share scheduling, cost-model placement and chunk-granular
//!   preemption over a shared heterogeneous fleet.
//!
//! Applications normally import through [`dbpp_core::prelude`] — the
//! curated stable surface — rather than navigating these modules.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `crates/bench` for the harness that regenerates every figure of the
//! paper's evaluation section.

#![warn(missing_docs)]

pub use dbpp_core as core;
pub use gpsim as sim;
pub use pipeline_apps as apps;
pub use pipeline_directive as directive;
pub use pipeline_rt as rt;
pub use pipeline_serve as serve;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_layer() {
        let profile = crate::sim::DeviceProfile::k40m();
        assert_eq!(profile.name, "nvidia-k40m");
        let parsed =
            crate::directive::parse_directive("pipeline(static[1,3]) pipeline_map(to:A[k:1][0:8])")
                .unwrap();
        assert_eq!(parsed.maps.len(), 1);
        let cfg = crate::apps::StencilConfig::test_small();
        assert!(cfg.total() > 0);
        assert_eq!(crate::rt::chunk_ranges(0, 4, 2).len(), 2);
        let jobs = crate::serve::WorkloadConfig::new(1, 2, 1).generate();
        assert_eq!(jobs.len(), 2);
        assert!(!crate::VERSION.is_empty());
    }
}

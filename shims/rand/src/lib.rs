//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the tiny subset of the `rand` 0.8 API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges. The generator is a
//! SplitMix64 — deterministic for a given seed on every platform, which
//! is exactly what the reproduction's seeded data initialization needs.
//! See CONTRIBUTING.md ("Offline builds") for the policy.

use std::ops::Range;

/// Core random-number source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, the only `Rng` capability this workspace uses.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 24 mantissa bits -> uniform in [0, 1).
        let u01 = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + u01 * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u01 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u01 * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64).
    ///
    /// Unlike upstream's `SmallRng` this one is stable across releases
    /// and platforms, which the test suite relies on for reproducible
    /// fixtures.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i), "{i}");
            let u = rng.gen_range(3usize..14);
            assert!((3..14).contains(&u), "{u}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the subset of the criterion 0.5 API its benches use:
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of criterion's statistical sampling it times
//! `sample_size` plain wall-clock iterations (after a short warmup) and
//! reports mean and minimum per-iteration time.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) every benchmark body runs exactly
//! once, so test runs stay fast. See CONTRIBUTING.md ("Offline
//! builds") for the policy.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_benchmark(&id.to_string(), 10, test_mode, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.criterion.test_mode, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.criterion.test_mode, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark, shown as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    warmup: u64,
    total: Duration,
    min: Duration,
    ran: bool,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.total = total;
        self.min = min;
        self.ran = true;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut bencher = Bencher {
        iters: if test_mode { 1 } else { sample_size as u64 },
        warmup: if test_mode { 0 } else { 2 },
        total: Duration::ZERO,
        min: Duration::ZERO,
        ran: false,
    };
    f(&mut bencher);
    if !bencher.ran {
        println!("{label:<44} (no iter call)");
        return;
    }
    let mean = bencher.total.as_secs_f64() / bencher.iters as f64;
    println!(
        "{label:<44} time: [{} mean, {} min, {} iters]",
        format_time(mean),
        format_time(bencher.min.as_secs_f64()),
        bencher.iters
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runnable group (upstream
/// `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (upstream `criterion_main!`).
///
/// Tolerates harness arguments cargo passes (`--bench`, `--test`, filter
/// strings): they are read by [`Criterion::default`] or ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export of `std::hint::black_box` for parity with upstream.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("shim");
        let mut runs = 0;
        g.sample_size(30).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert_eq!(runs, 1); // test_mode: exactly one timed iteration
    }

    #[test]
    fn bench_with_input_passes_reference() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("shim");
        let mut got = 0usize;
        g.bench_with_input(BenchmarkId::new("double", 21), &21usize, |b, &n| {
            b.iter(|| got = n * 2);
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("pipelined", 4).to_string(), "pipelined/4");
        assert_eq!(BenchmarkId::from_parameter("large").to_string(), "large");
    }
}

//! Deterministic case runner (subset of upstream `proptest::test_runner`).

use std::fmt;

/// Deterministic generator used for all strategy draws (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The inputs did not meet an assumption; the case is retried with
    /// fresh inputs and does not count against the case budget.
    Reject(String),
}

impl TestCaseError {
    /// A failing verdict with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (discard) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass. The
    /// `PROPTEST_CASES` environment variable, when set, caps this.
    pub cases: u32,
}

impl Config {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    fn effective_cases(&self) -> u32 {
        let cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(u32::MAX);
        self.cases.min(cap).max(1)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `case` until `config.cases` successes, panicking on the first
/// failure with enough detail (case index, seed) to reproduce it.
pub fn run_cases<F>(config: Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = config.effective_cases();
    let max_attempts = cases as u64 * 16 + 1024;
    let mut done: u32 = 0;
    let mut attempt: u64 = 0;
    while done < cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest '{name}': too many rejected cases ({done}/{cases} passed after {max_attempts} attempts)"
        );
        let seed = fnv1a(name) ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' case {done} failed (seed {seed:#018x}):\n{msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_reaches_case_budget() {
        let mut count = 0;
        run_cases(Config::with_cases(17), "budget", |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejects_are_retried_not_counted() {
        let mut attempts = 0;
        let mut passes = 0;
        run_cases(Config::with_cases(8), "rejects", |rng| {
            attempts += 1;
            if rng.below(2) == 0 {
                return Err(TestCaseError::reject("coin flip"));
            }
            passes += 1;
            Ok(())
        });
        assert_eq!(passes, 8);
        assert!(attempts >= 8);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        run_cases(Config::with_cases(4), "failing", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = Vec::new();
        run_cases(Config::with_cases(5), "det", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        run_cases(Config::with_cases(5), "det", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}

//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the subset of the proptest 1.x API its test suites use:
//! strategies over integer ranges, tuples, vectors, options, one-of
//! unions and a small character-class string generator, plus the
//! `proptest!`, `prop_oneof!`, `prop_assert*!` and `prop_assume!`
//! macros. Differences from upstream:
//!
//! * **No shrinking.** A failing case panics with its case index and
//!   seed; generation is fully deterministic (derived from the test
//!   name and case index), so a failure reproduces by re-running the
//!   test.
//! * **String strategies** support only `[class]{m,n}` patterns (one
//!   character class with ranges, one bounded repetition) — the shape
//!   every pattern in this repository uses.
//! * `PROPTEST_CASES` in the environment caps the case count of every
//!   test (used by CI smoke runs).
//!
//! See CONTRIBUTING.md ("Offline builds") for the policy.

pub mod strategy;

pub mod test_runner;

pub mod collection {
    //! Strategies for collections (upstream `proptest::collection`).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s of `elem` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(elem, size)
    }
}

pub mod option {
    //! Strategies for `Option` (upstream `proptest::option`).

    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` about a quarter of the time and
    /// `Some` of the inner strategy's value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

pub mod arbitrary {
    //! Canonical strategies per type (upstream `proptest::arbitrary`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy of `T` (upstream `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests (upstream `proptest::proptest!`).
///
/// Supported grammar: an optional `#![proptest_config(expr)]` header,
/// then test functions whose arguments are `pattern in strategy` pairs.
/// Bodies may use `?` and `return Ok(())` — they run inside a closure
/// returning `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut *__rng);
                    )+
                    let mut __case = move || ->
                        ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let _: () = $body;
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Uniform choice between strategies (upstream `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fallible assertion: returns `Err(TestCaseError::Fail)` instead of
/// panicking (upstream `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion (upstream `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), __l, __r
        );
    }};
}

/// Fallible inequality assertion (upstream `prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), __l
        );
    }};
}

/// Discard the current case without failing (upstream `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

//! Value-generation strategies (subset of upstream `proptest::strategy`).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree and no shrinking: `generate`
/// draws one concrete value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy (upstream `BoxedStrategy`, minus shrinking).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// A Vec of strategies generates element-wise: the i-th output comes
// from the i-th strategy. This is what `prop_flat_map(|..| vec_of_strats)`
// relies on.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Strategy for variable-length `Vec`s (see [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(elem: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "vec strategy over empty size range");
        VecStrategy { elem, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `Option`s (see [`crate::option::of`]).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T: Debug> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// String strategies from a regex-like pattern. Only the subset the
// workspace uses is understood: literal characters, one-level character
// classes `[a-z ...]`, and `{m}` / `{m,n}` repetitions.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = compile_pattern(self);
        let mut out = String::new();
        for (ranges, min, max) in &elements {
            let reps = *min + rng.below((*max - *min + 1) as u64) as usize;
            let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
            for _ in 0..reps {
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let count = *hi as u64 - *lo as u64 + 1;
                    if pick < count {
                        out.push(char::from_u32(*lo as u32 + pick as u32).expect("char range"));
                        break;
                    }
                    pick -= count;
                }
            }
        }
        out
    }
}

type PatternElement = (Vec<(char, char)>, usize, usize);

fn compile_pattern(pattern: &str) -> Vec<PatternElement> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements: Vec<PatternElement> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = if chars[i] == '[' {
            i += 1;
            let mut ranges = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                let lo = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let hi = chars[i + 2];
                    assert!(lo <= hi, "descending class range in {pattern:?}");
                    ranges.push((lo, hi));
                    i += 3;
                } else {
                    ranges.push((lo, lo));
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated character class in {pattern:?}");
            i += 1; // consume ']'
            ranges
        } else {
            let c = chars[i];
            i += 1;
            vec![(c, c)]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut min = 0usize;
            while chars[i].is_ascii_digit() {
                min = min * 10 + chars[i] as usize - '0' as usize;
                i += 1;
            }
            let max = if chars[i] == ',' {
                i += 1;
                let mut max = 0usize;
                while chars[i].is_ascii_digit() {
                    max = max * 10 + chars[i] as usize - '0' as usize;
                    i += 1;
                }
                max
            } else {
                min
            };
            assert_eq!(chars[i], '}', "malformed repetition in {pattern:?}");
            i += 1;
            (min, max)
        } else {
            (1, 1)
        };
        assert!(min <= max, "descending repetition in {pattern:?}");
        elements.push((ranges, min, max));
    }
    elements
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (-4i64..5).generate(&mut rng);
            assert!((-4..5).contains(&v), "{v}");
            let u = (1u16..2048).generate(&mut rng);
            assert!((1..2048).contains(&u), "{u}");
        }
    }

    #[test]
    fn string_pattern_matches_class_and_length() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[ -~]{0,120}".generate(&mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_pattern_is_reproduced() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!("abc".generate(&mut rng), "abc");
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let mut rng = TestRng::from_seed(4);
        let strats = vec![0u8..1, 10u8..11, 20u8..21];
        assert_eq!(strats.generate(&mut rng), vec![0, 10, 20]);
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = TestRng::from_seed(5);
        let u = Union::new(vec![(0u8..1).boxed(), (1u8..2).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}

//! Import → fit → predict, end to end: run a stencil twice (a
//! two-chunk-size probe sweep), export both runs as Perfetto trace
//! JSON, parse them back through the importer, fit a `DeviceProfile`
//! from the imported copy samples — starting from a deliberately
//! *wrong* belief (the HD 7970 profile, while the runs actually
//! executed on a K40m) — and prove closure: the fitted profile's
//! cost-model prediction lands within a few percent of the imported
//! trace's actual makespan.
//!
//! ```text
//! cargo run --release --example trace_calibration
//! ```

use gpsim::{to_perfetto_trace, DeviceProfile, ExecMode, Gpu};
use dbpp_core::prelude::*;
use dbpp_core::{calibrate_with_fit, fit_profile, ImportedTrace};
use pipeline_apps::StencilConfig;

fn run_and_export(cfg: &StencilConfig) -> (Gpu, pipeline_rt::Region, String) {
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
    let inst = cfg.setup(&mut gpu).unwrap();
    let builder = cfg.builder();
    let report = run_model(
        &mut gpu,
        &inst.region,
        &builder,
        ExecModel::PipelinedBuffer,
        &RunOptions::default(),
    )
    .unwrap();
    let doc = to_perfetto_trace(
        gpu.timeline(),
        gpu.host_spans(),
        gpu.wait_records(),
        &report.counter_tracks,
    );
    (gpu, inst.region, doc)
}

fn main() {
    let base = StencilConfig {
        nx: 512,
        ny: 512,
        nz: 48,
        chunk: 5,
        ..StencilConfig::parboil_default()
    };
    let probe = StencilConfig { chunk: 7, ..base };

    // 1. Run the probe sweep on the *actual* device (a K40m) and keep
    //    only the exported trace documents — from here on, the traces
    //    are the sole source of truth.
    let (gpu, region, doc_a) = run_and_export(&base);
    let (_, _, doc_b) = run_and_export(&probe);
    println!("exported two probe traces ({} + {} bytes)", doc_a.len(), doc_b.len());

    // 2. Import them back through the one Perfetto-reading code path.
    let trace_a = ImportedTrace::parse(&doc_a).unwrap();
    let trace_b = ImportedTrace::parse(&doc_b).unwrap();
    let analysis = trace_a.analyze();
    println!(
        "imported {} device spans; offline attribution: makespan {}, api overhead {}",
        trace_a.timeline.len(),
        analysis.total,
        analysis.api_overhead,
    );

    // 3. Fit a profile from the traces, starting from a deliberately
    //    wrong belief. The fit must recover the K40m's components from
    //    the copy samples, not echo the base.
    let wrong_belief = DeviceProfile::hd7970();
    let truth = DeviceProfile::k40m();
    let fit = fit_profile(&wrong_belief, &[&trace_a, &trace_b]);
    println!(
        "\nfitted from traces (belief was hd7970, truth is k40m):\n\
         h2d peak  {:>7.2} GB/s (truth {:.2}, {} samples)\n\
         d2h peak  {:>7.2} GB/s (truth {:.2}, {} samples)\n\
         duplex    {:>7} (truth {:.2})\n\
         api       {:>7} (truth {})",
        fit.profile.h2d_peak_bw / 1e9,
        truth.h2d_peak_bw / 1e9,
        fit.h2d.samples,
        fit.profile.d2h_peak_bw / 1e9,
        truth.d2h_peak_bw / 1e9,
        fit.d2h.samples,
        fit.duplex.map(|d| format!("{d:.2}")).unwrap_or_else(|| "-".into()),
        truth.duplex_factor,
        fit.api_overhead,
        truth.api_overhead,
    );

    // 4. Closure: predict the traced schedule's makespan with the
    //    fitted profile (+ residual per-engine calibration) and compare
    //    against what the trace actually measured.
    let rep = calibrate_with_fit(
        &gpu,
        fit,
        &region,
        &base.builder(),
        ExecModel::PipelinedBuffer,
        base.chunk,
        base.streams,
        &trace_a,
    )
    .unwrap();
    println!(
        "\nclosure: predicted {} vs measured {} ({:.1}% error)",
        rep.predicted.total,
        rep.measured_total,
        rep.closure_err() * 100.0,
    );
    assert!(rep.closure_err() < 0.10, "closure must hold within 10%");
}

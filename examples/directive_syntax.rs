//! Tour of the directive clause syntax (the paper's Figure 1/2): parse
//! several directives, show the canonical form, the bound region specs,
//! and what the error messages look like.
//!
//! ```text
//! cargo run --release -p pipeline-apps --example directive_syntax
//! ```

use pipeline_directive::parse_directive;

fn main() {
    let good = [
        // The paper's Figure 2, verbatim modulo dimensions.
        "#pragma omp target \
         pipeline(static[1,3]) \
         pipeline_map(to:A0[k-1:3][0:510][0:510]) \
         pipeline_map(from:Anext[k:1][0:510][0:510]) \
         pipeline_mem_limit(MB_256)",
        // Adaptive schedule (the §VII extension) with byte-suffix limit.
        "pipeline(adaptive) \
         pipeline_map(tofrom:field[k:1][0:4096]) \
         pipeline_mem_limit(64MB)",
        // Column-block split of a matrix (the GEMM pattern).
        "pipeline(static[1,4]) pipeline_map(to:B[0:8192][256*l:256])",
        // Scaled split: each iteration consumes 4 rows.
        "pipeline(static[2,2]) pipeline_map(to:rows[4*k:4][0:1024])",
    ];

    for src in good {
        let parsed = parse_directive(src).expect("parse");
        println!("input:     {src}");
        println!("canonical: {parsed}");
        let spec = parsed.to_region_spec(|_| Some(512)).expect("bind");
        for m in &spec.maps {
            println!(
                "  map {:<6} dir={:?} window={} slice_elems={} extent={}",
                m.name,
                m.dir,
                m.split.window(),
                m.split.slice_elems(),
                m.split.extent()
            );
        }
        if let Some(limit) = spec.mem_limit {
            println!("  mem_limit = {limit} bytes");
        }
        println!();
    }

    println!("--- diagnostics ---");
    let bad = [
        "pipeline(dynamic[1,3]) pipeline_map(to:A[k:1][0:8])",
        "pipeline(static[1,3]) pipeline_map(inout:A[k:1][0:8])",
        "pipeline(static[0,3]) pipeline_map(to:A[k:1][0:8])",
        "pipeline(static[1,3]) pipeline_map(to:A[0:8])",
        "pipeline(static[1,3]) pipeline_map(to:A[k:1][0:8]) pipeline_map(to:B[j:1][0:8])",
    ];
    for src in bad {
        let err = parse_directive(src)
            .and_then(|d| d.to_region_spec(|_| Some(64)))
            .expect_err("should fail");
        println!("input: {src}\n  -> {err}\n");
    }
}

//! Quickstart: offload a 1-D moving-average loop three ways — naive,
//! hand-pipelined, and with the paper's pipelined ring buffer — and
//! compare time and device memory.
//!
//! ```text
//! cargo run --release -p pipeline-apps --example quickstart
//! ```

use gpsim::{DeviceProfile, ExecMode, Gpu, KernelCost, KernelLaunch};
use pipeline_directive::parse_directive;
use dbpp_core::prelude::*;

fn main() {
    // A simulated Tesla K40m in functional mode: kernels really execute
    // against simulated device memory, timing comes from the cost model.
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();

    // Problem: out[k] = mean(in[k-1], in[k], in[k+1]) over 256 slices of
    // 64K elements (64 MB of f32 input).
    const NZ: usize = 256;
    const SLICE: usize = 64 * 1024;
    let input = gpu.alloc_host(NZ * SLICE, true).unwrap();
    let output = gpu.alloc_host(NZ * SLICE, true).unwrap();
    gpu.host_fill(input, |i| (i % 97) as f32).unwrap();

    // The paper's directive syntax, parsed into a typed region spec.
    let directive = format!(
        "#pragma omp target pipeline(static[4,3]) \
         pipeline_map(to:input[k-1:3][0:{SLICE}]) \
         pipeline_map(from:output[k:1][0:{SLICE}])"
    );
    let spec = parse_directive(&directive)
        .unwrap()
        .to_region_spec(|_| Some(NZ))
        .unwrap();
    let region = Region::new(spec, 1, (NZ - 1) as i64, vec![input, output]);

    // One kernel builder serves every execution model: kernels address
    // data only through views, so the ring buffer's mod-indexing is
    // transparent.
    let builder = |ctx: &ChunkCtx| {
        let (k0, k1) = (ctx.k0, ctx.k1);
        let (vin, vout) = (ctx.view(0), ctx.view(1));
        KernelLaunch::new(
            "avg3",
            KernelCost {
                flops: (k1 - k0) as u64 * SLICE as u64 * 3,
                bytes: (k1 - k0) as u64 * SLICE as u64 * 8,
            },
            move |kc| {
                for k in k0..k1 {
                    let a = kc.read(vin.slice_ptr(k - 1), SLICE)?;
                    let b = kc.read(vin.slice_ptr(k), SLICE)?;
                    let c = kc.read(vin.slice_ptr(k + 1), SLICE)?;
                    let mut out = kc.write(vout.slice_ptr(k), SLICE)?;
                    for i in 0..SLICE {
                        out[i] = (a[i] + b[i] + c[i]) / 3.0;
                    }
                }
                Ok(())
            },
        )
    };

    println!("directive: {directive}\n");
    let naive = run_model(&mut gpu, &region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
    let pipelined = run_model(&mut gpu, &region, &builder, ExecModel::Pipelined, &RunOptions::default()).unwrap();
    let buffered = run_model(&mut gpu, &region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    println!("{naive}");
    println!("{pipelined}");
    println!("{buffered}");
    println!(
        "\npipelined-buffer: {:.2}x speedup, {:.0}% device-memory saving vs naive",
        buffered.speedup_over(&naive),
        100.0 * buffered.mem_saving_over(&naive),
    );

    // Spot-check the numerics.
    let mut got = vec![0.0f32; 4];
    gpu.host_read(output, 5 * SLICE, &mut got).unwrap();
    println!("output[5][0..4] = {got:?}");
}

//! Visualize what pipelining does: run the stencil naively and with the
//! pipelined ring buffer, and render both device timelines as ASCII
//! Gantt charts (the simulator's equivalent of the NVIDIA Visual
//! Profiler views the paper used). Also writes Chrome-trace JSON files
//! loadable in `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run --release --example timeline_trace
//! ```

use gpsim::{render_gantt, to_chrome_trace, utilization, DeviceProfile, ExecMode, Gpu};
use pipeline_apps::StencilConfig;
use dbpp_core::prelude::*;

fn main() {
    let cfg = StencilConfig {
        nx: 512,
        ny: 512,
        nz: 32,
        chunk: 2,
        ..StencilConfig::parboil_default()
    };
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
    let inst = cfg.setup(&mut gpu).unwrap();
    let builder = cfg.builder();

    let naive = run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
    let naive_tl = gpu.timeline().to_vec();

    let buffered = run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    let buffered_tl = gpu.timeline().to_vec();

    println!("== Naive offload ({}; no overlap by construction) ==", naive.total);
    print!("{}", render_gantt(&naive_tl, 64));
    println!(
        "aggregate engine utilization: {:.0}%\n",
        100.0 * utilization(&naive_tl).aggregate()
    );

    println!(
        "== Pipelined-buffer ({}; {:.2}x speedup) ==",
        buffered.total,
        buffered.speedup_over(&naive)
    );
    print!("{}", render_gantt(&buffered_tl, 64));
    println!(
        "aggregate engine utilization: {:.0}%",
        100.0 * utilization(&buffered_tl).aggregate()
    );

    let out = std::env::temp_dir();
    for (name, tl) in [("naive", &naive_tl), ("buffered", &buffered_tl)] {
        let path = out.join(format!("dbpp_trace_{name}.json"));
        std::fs::write(&path, to_chrome_trace(tl)).unwrap();
        println!("wrote {} ({} events)", path.display(), tl.len());
    }
}

//! Lattice QCD proxy: the paper's motivating application (§V-A, §V-D).
//! Shows the naive offload's ≈50 % transfer share, the pipelined
//! speedup, and the O(n⁴) → O(C·n³) memory reduction — then validates
//! the hopping operator functionally at a small lattice.
//!
//! ```text
//! cargo run --release -p pipeline-apps --example qcd_lattice
//! ```

use gpsim::{DeviceProfile, ExecMode, Gpu};
use pipeline_apps::util::{assert_exact, read_host};
use pipeline_apps::QcdConfig;
use dbpp_core::prelude::*;

fn main() {
    println!("{:<8} {:>10} {:>10} {:>10} {:>9} {:>10} {:>10}",
             "lattice", "naive", "pipelined", "buffer", "speedup", "mem naive", "mem buf");
    for n in [12usize, 24, 36] {
        let cfg = QcdConfig::paper_size(n);
        let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
        let inst = cfg.setup(&mut gpu).unwrap();
        let builder = cfg.builder();
        let naive = run_model(&mut gpu, &inst.region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        let pipe = run_model(&mut gpu, &inst.region, &builder, ExecModel::Pipelined, &RunOptions::default()).unwrap();
        let buf = run_model(&mut gpu, &inst.region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>8.2}x {:>8.1}MB {:>8.1}MB",
            format!("{n}^4"),
            naive.total.to_string(),
            pipe.total.to_string(),
            buf.total.to_string(),
            buf.speedup_over(&naive),
            naive.gpu_mem_bytes as f64 / 1e6,
            buf.gpu_mem_bytes as f64 / 1e6,
        );
        if n == 24 {
            println!(
                "         naive phase split: {:.0}% HtoD, {:.0}% DtoH, {:.0}% kernel \
                 (paper: transfers ~50%)",
                100.0 * naive.h2d.as_secs_f64()
                    / (naive.h2d + naive.d2h + naive.kernel).as_secs_f64(),
                100.0 * naive.d2h.as_secs_f64()
                    / (naive.h2d + naive.d2h + naive.kernel).as_secs_f64(),
                100.0 * naive.kernel.as_secs_f64()
                    / (naive.h2d + naive.d2h + naive.kernel).as_secs_f64(),
            );
        }
    }

    // Functional validation at a small lattice: the streamed hopping
    // operator is bit-identical to the sequential CPU sweep.
    let cfg = QcdConfig::test_small();
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
    let inst = cfg.setup(&mut gpu).unwrap();
    let psi = read_host(&gpu, inst.psi).unwrap();
    let u = read_host(&gpu, inst.u).unwrap();
    let f = read_host(&gpu, inst.f).unwrap();
    let expect = cfg.cpu_reference(&psi, &u, &f);
    run_model(&mut gpu, &inst.region, &cfg.builder(), ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    assert_exact(&read_host(&gpu, inst.out).unwrap(), &expect, "qcd hopping");
    println!(
        "\nfunctional check: {}³x{} lattice hopping operator matches the CPU reference exactly",
        cfg.n, cfg.nt
    );
}

//! Multi-sweep heat diffusion with the Parboil-style stencil: runs
//! several Jacobi sweeps, ping-ponging the grids between sweeps, and
//! validates the final temperature field against a CPU reference.
//!
//! This is the workload of the paper's Figure 2 — the stencil region is
//! built from the paper's own directive text.
//!
//! ```text
//! cargo run --release -p pipeline-apps --example stencil_heat
//! ```

use gpsim::{DeviceProfile, ExecMode, Gpu, SimTime};
use pipeline_apps::util::{max_rel_error, read_host};
use pipeline_apps::StencilConfig;
use dbpp_core::prelude::*;

const SWEEPS: usize = 4;

fn main() {
    let cfg = StencilConfig {
        nx: 512,
        ny: 512,
        nz: 64,
        chunk: 4,
        ..StencilConfig::parboil_default()
    };
    println!("grid {}x{}x{}, {} Jacobi sweeps", cfg.nx, cfg.ny, cfg.nz, SWEEPS);
    println!("directive: {}\n", cfg.directive());

    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
    let inst = cfg.setup(&mut gpu).unwrap();
    let builder = cfg.builder();

    // CPU reference: the same sweeps, sequentially.
    let mut ref_grid = read_host(&gpu, inst.a0).unwrap();
    for _ in 0..SWEEPS {
        let next = cfg.cpu_reference(&ref_grid);
        ref_grid = copy_boundary(&ref_grid, next, &cfg);
    }

    // Device: ping-pong the two host arrays between sweeps. Each sweep
    // is one pipelined region.
    let mut naive_time = SimTime::ZERO;
    let mut buffer_time = SimTime::ZERO;
    let mut mem = (0u64, 0u64);
    let (mut src, mut dst) = (inst.a0, inst.anext);
    // The kernel writes only interior points, but transfers move whole
    // slices — so map the output `tofrom` and seed it with the source:
    // boundary values then ride along instead of being clobbered by
    // uninitialized device memory.
    let mut spec = inst.region.spec.clone();
    spec.maps[1].dir = pipeline_rt::MapDir::ToFrom;
    for sweep in 0..SWEEPS {
        let region = Region::new(spec.clone(), inst.region.lo, inst.region.hi, vec![src, dst]);
        let full = read_host(&gpu, src).unwrap();
        gpu.host_write(dst, 0, &full).unwrap();

        let naive = run_model(&mut gpu, &region, &builder, ExecModel::Naive, &RunOptions::default()).unwrap();
        let buffered = run_model(&mut gpu, &region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        naive_time += naive.total;
        buffer_time += buffered.total;
        mem = (naive.gpu_mem_bytes, buffered.gpu_mem_bytes);
        println!(
            "sweep {sweep}: naive {} | pipelined-buffer {} ({:.2}x)",
            naive.total,
            buffered.total,
            buffered.speedup_over(&naive)
        );
        std::mem::swap(&mut src, &mut dst);
    }

    let got = read_host(&gpu, src).unwrap();
    let err = max_rel_error(&got, &ref_grid);
    println!(
        "\ntotal: naive {naive_time} vs pipelined-buffer {buffer_time} ({:.2}x), \
         device memory {:.1} MB -> {:.1} MB",
        naive_time.as_secs_f64() / buffer_time.as_secs_f64(),
        mem.0 as f64 / 1e6,
        mem.1 as f64 / 1e6,
    );
    println!("max relative error vs CPU reference: {err:.2e}");
    assert!(err < 1e-6, "device result diverged");
}

/// The region writes only interior slices; carry boundary planes from
/// the previous grid, mirroring what the device run does via the seeded
/// output array.
fn copy_boundary(prev: &[f32], mut next: Vec<f32>, cfg: &StencilConfig) -> Vec<f32> {
    let plane = cfg.plane();
    next[..plane].copy_from_slice(&prev[..plane]);
    let last = (cfg.nz - 1) * plane;
    next[last..].copy_from_slice(&prev[last..]);
    // Interior boundaries of each plane (i/j edges) are never written
    // either; carry them over plane by plane.
    for k in 1..cfg.nz - 1 {
        for j in 0..cfg.ny {
            for i in 0..cfg.nx {
                if j == 0 || j == cfg.ny - 1 || i == 0 || i == cfg.nx - 1 {
                    let idx = k * plane + j * cfg.nx + i;
                    next[idx] = prev[idx];
                }
            }
        }
    }
    next
}

//! Out-of-core GEMM: run a matrix multiplication whose full footprint
//! exceeds device memory. The baseline and block-shared versions fail
//! with out-of-memory; the pipeline-buffer version streams reduction
//! blocks through small rings and completes (the paper's Figures 9/10
//! at the two rightmost sizes).
//!
//! ```text
//! cargo run --release -p pipeline-apps --example out_of_core_gemm
//! ```

use gpsim::{DeviceProfile, ExecMode, Gpu};
use pipeline_apps::util::{max_rel_error, read_host};
use pipeline_apps::MatmulConfig;
use dbpp_core::prelude::RtError;

fn main() {
    // Part 1 (timing mode, paper scale): n = 24576 — three matrices of
    // 2.4 GB each cannot fit the simulated K40m's usable memory.
    let n = 24576;
    let cfg = MatmulConfig::with_n(n);
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
    let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
    println!(
        "n = {n}: full footprint {:.1} GB, device capacity {:.1} GB",
        3.0 * (n * n) as f64 * 4.0 / 1e9,
        gpu.mem_capacity() as f64 / 1e9
    );

    match cfg.run_baseline(&mut gpu, a, b, c) {
        Err(RtError::Sim(gpsim::SimError::OutOfMemory { requested, available })) => {
            println!("baseline:        OOM (requested {requested} B, {available} B available)")
        }
        other => panic!("expected OOM, got {other:?}"),
    }
    match cfg.run_block_shared(&mut gpu, a, b, c) {
        Err(RtError::Sim(gpsim::SimError::OutOfMemory { .. })) => {
            println!("block-shared:    OOM")
        }
        other => panic!("expected OOM, got {other:?}"),
    }
    let buf = cfg.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
    println!(
        "pipeline-buffer: OK — {} using {:.1} MB of device memory ({} tasks on {} streams)",
        buf.total,
        buf.gpu_mem_bytes as f64 / 1e6,
        buf.chunks,
        buf.streams
    );

    // Part 2 (functional mode, small): prove the streamed computation is
    // numerically right.
    let cfg = MatmulConfig {
        n: 96,
        bc: 16,
        chunk: 1,
        streams: 3,
    };
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
    let (a, b, c) = cfg.host_matrices(&mut gpu).unwrap();
    let expect = cfg.cpu_reference(&read_host(&gpu, a).unwrap(), &read_host(&gpu, b).unwrap());
    cfg.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
    let got = read_host(&gpu, c).unwrap();
    let err = max_rel_error(&got, &expect);
    println!("\nfunctional check at n = {}: max relative error {err:.2e}", cfg.n);
    assert!(err < 1e-4);
}

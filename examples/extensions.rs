//! Tour of the §VII extensions — the paper's "future work", implemented:
//! multi-device co-scheduling, the auto-tuning scheduler, and
//! function-based dependencies.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use gpsim::{DeviceProfile, ExecMode, Gpu, HostPool, KernelCost, KernelLaunch};
use dbpp_core::prelude::*;
use dbpp_core::{autotune, WindowFn};

const NZ: usize = 96;
const SLICE: usize = 1 << 18; // 1 MB slices

fn spec(chunk: usize, streams: usize) -> RegionSpec {
    RegionSpec::new(Schedule::static_(chunk, streams))
        .with_map(MapSpec {
            name: "in".into(),
            dir: MapDir::To,
            split: SplitSpec::OneD {
                offset: Affine::shifted(-1),
                window: 3,
                extent: NZ,
                slice_elems: SLICE,
            },
        })
        .with_map(MapSpec {
            name: "out".into(),
            dir: MapDir::From,
            split: SplitSpec::OneD {
                offset: Affine::IDENTITY,
                window: 1,
                extent: NZ,
                slice_elems: SLICE,
            },
        })
}

fn builder(ctx: &ChunkCtx) -> KernelLaunch {
    let n = (ctx.k1 - ctx.k0) as u64;
    KernelLaunch::cost_only(
        "blur",
        KernelCost {
            flops: n * SLICE as u64 * 6,
            bytes: n * SLICE as u64 * 16,
        },
    )
}

fn main() {
    // ---------------------------------------------------------------
    // 1. Multi-device co-scheduling over a shared host pool.
    // ---------------------------------------------------------------
    println!("== multi-device co-scheduling (K40m + HD 7970) ==");
    let pool = HostPool::new(ExecMode::Timing);
    let mut gpus = vec![
        Gpu::with_host_pool(DeviceProfile::k40m(), pool.clone()).unwrap(),
        Gpu::with_host_pool(DeviceProfile::hd7970(), pool).unwrap(),
    ];
    let input = gpus[0].alloc_host(NZ * SLICE, true).unwrap();
    let output = gpus[0].alloc_host(NZ * SLICE, true).unwrap();
    let region = Region::new(spec(2, 3), 1, (NZ - 1) as i64, vec![input, output]);

    let single = run_model(&mut gpus[0], &region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    let opts = RunOptions::default()
        .with_multi(MultiOptions::default().with_probe_cost(6 * SLICE as u64, 16 * SLICE as u64));
    let multi = run_model_multi(&mut gpus, &region, &builder, &opts).unwrap();
    for (i, (p, r)) in multi.partitions.iter().zip(&multi.per_device).enumerate() {
        let name = if i == 0 { "k40m   " } else { "hd7970 " };
        match r {
            Some(rep) => println!(
                "  {name} iterations [{:>3}, {:>3})  time {}",
                p.0, p.1, rep.total
            ),
            None => println!("  {name} (idle)"),
        }
    }
    println!(
        "  single K40m: {}  co-scheduled makespan: {}  ({:.2}x)\n",
        single.total,
        multi.makespan,
        multi.speedup_over(&single)
    );

    // ---------------------------------------------------------------
    // 2. Auto-tuning on the AMD device (where chunking decides wins).
    // ---------------------------------------------------------------
    println!("== auto-tuning scheduler (HD 7970) ==");
    let mut amd = Gpu::new(DeviceProfile::hd7970(), ExecMode::Timing).unwrap();
    let input = amd.alloc_host(NZ * SLICE, true).unwrap();
    let output = amd.alloc_host(NZ * SLICE, true).unwrap();
    let region = Region::new(spec(1, 3), 1, (NZ - 1) as i64, vec![input, output]);
    let dflt = run_model(&mut amd, &region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    let tuned = autotune(&amd, &region, &builder, &TuneSpace::default()).unwrap();
    println!(
        "  paper default static[1,3]: {}   tuned {:?}: {}  ({:.2}x better)",
        dflt.total,
        tuned.best,
        tuned.best_time,
        dflt.total.as_secs_f64() / tuned.best_time.as_secs_f64()
    );
    println!("  ({} trials against the timing-mode twin)\n", tuned.trials.len());

    // ---------------------------------------------------------------
    // 3. Function-based dependencies: a step window the affine syntax
    //    cannot express — iteration k needs the *pair* of slices
    //    {even(k), even(k)+1}.
    // ---------------------------------------------------------------
    println!("== function-based dependencies ==");
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap();
    let input = gpu.alloc_host(NZ * SLICE, true).unwrap();
    let output = gpu.alloc_host(NZ * SLICE, true).unwrap();
    let region = Region::new(spec(2, 3), 0, (NZ - 1) as i64, vec![input, output]);
    let window = |k0: i64, k1: i64| (k0 & !1, ((k1 - 1) & !1) + 2);
    let windows: Vec<Option<&WindowFn<'_>>> = vec![Some(&window), None];
    let rep = run_window_fn(&mut gpu, &region, &builder, &windows, &RunOptions::default()).unwrap();
    println!(
        "  step-window pipeline: {} over {} chunks, {:.1} MB of rings, \
         {:.1} MB moved once each",
        rep.total,
        rep.chunks,
        rep.array_bytes as f64 / 1e6,
        rep.h2d_bytes as f64 / 1e6
    );
}

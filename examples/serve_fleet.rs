//! Serve a bursty multi-tenant job stream on a heterogeneous fleet.
//!
//! Three tenants with 2:1:1 fair-share weights submit a few hundred
//! mixed jobs (conv3d / stencil / GEMM / QCD) to four simulated devices.
//! Long jobs are preempted at chunk boundaries and resumed — possibly
//! on a different device — via the checkpoint/restore path; every
//! preempted job is re-executed uninterrupted and checked bit-identical.
//!
//! Run with: `cargo run --example serve_fleet`

use dbpp_core::prelude::*;

fn main() -> RtResult<()> {
    let tenants = vec![
        TenantSpec::new("prod", 2.0),
        TenantSpec::new("batch", 1.0),
        TenantSpec::new("dev", 1.0),
    ];
    let jobs = WorkloadConfig::new(0xF1EE7, 240, tenants.len()).generate();

    let mut fleet = Fleet::build(4)?;
    fleet.calibrate()?;

    let report = serve(&mut fleet, &tenants, &jobs, &ServeOptions::new())?;

    println!(
        "served {} jobs on {} devices in {} simulated",
        report.done, report.devices, report.makespan
    );
    println!(
        "preempted {} jobs ({} slices total); {}/{} verified bit-identical",
        report.preempted, report.total_slices, report.verified_ok, report.verified
    );
    println!("fairness (Jain): {:.4}", report.fairness);
    for t in &report.tenants {
        println!(
            "  {:<6} weight {:.0}  done {:>3}  wait p50 {:>7} ns  p95 {:>8} ns  makespan p95 {:>9} ns  misses {}",
            t.name,
            t.weight,
            t.done,
            t.queue_wait.p50_ns(),
            t.queue_wait.p95_ns(),
            t.makespan.p95_ns(),
            t.deadline_misses,
        );
    }
    assert_eq!(report.verified_ok, report.verified, "verification failed");
    Ok(())
}

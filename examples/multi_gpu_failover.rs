//! Multi-GPU co-scheduling with device-loss failover: a stencil region
//! is partitioned across a K40m and an HD 7970 sharing one host pool,
//! the K40m is injected to die mid-flight, and the supervisor migrates
//! its unfinished iterations to the survivor — the recovered output is
//! bit-identical to the fault-free run.
//!
//! ```text
//! cargo run --release --example multi_gpu_failover
//! ```

use gpsim::{DeviceProfile, ExecMode, FaultPlan, Gpu, HostPool, KernelCost, KernelLaunch};
use pipeline_directive::parse_directive;
use dbpp_core::prelude::*;

const NZ: usize = 256;
const SLICE: usize = 16 * 1024;

fn setup() -> (Vec<Gpu>, Region) {
    let pool = HostPool::new(ExecMode::Functional);
    let mut gpus = vec![
        Gpu::with_host_pool(DeviceProfile::k40m(), pool.clone()).unwrap(),
        Gpu::with_host_pool(DeviceProfile::hd7970(), pool).unwrap(),
    ];
    let input = gpus[0].alloc_host(NZ * SLICE, true).unwrap();
    let output = gpus[0].alloc_host(NZ * SLICE, true).unwrap();
    gpus[0].host_fill(input, |i| (i % 97) as f32).unwrap();
    let directive = format!(
        "#pragma omp target pipeline(static[4,3]) \
         pipeline_map(to:input[k-1:3][0:{SLICE}]) \
         pipeline_map(from:output[k:1][0:{SLICE}])"
    );
    let spec = parse_directive(&directive)
        .unwrap()
        .to_region_spec(|_| Some(NZ))
        .unwrap();
    let region = Region::new(spec, 1, (NZ - 1) as i64, vec![input, output]);
    (gpus, region)
}

fn builder(ctx: &ChunkCtx) -> KernelLaunch {
    let (k0, k1) = (ctx.k0, ctx.k1);
    let (vin, vout) = (ctx.view(0), ctx.view(1));
    KernelLaunch::new(
        "avg3",
        KernelCost {
            flops: (k1 - k0) as u64 * SLICE as u64 * 3,
            bytes: (k1 - k0) as u64 * SLICE as u64 * 8,
        },
        move |kc| {
            for k in k0..k1 {
                let a = kc.read(vin.slice_ptr(k - 1), SLICE)?;
                let b = kc.read(vin.slice_ptr(k), SLICE)?;
                let c = kc.read(vin.slice_ptr(k + 1), SLICE)?;
                let mut out = kc.write(vout.slice_ptr(k), SLICE)?;
                for i in 0..SLICE {
                    out[i] = (a[i] + b[i] + c[i]) / 3.0;
                }
            }
            Ok(())
        },
    )
}

fn main() {
    let opts = RunOptions::default().with_multi(
        MultiOptions::default().with_probe_cost(3 * SLICE as u64, 8 * SLICE as u64),
    );

    // Fault-free co-scheduled reference.
    let (mut gpus, region) = setup();
    let clean = run_model_multi(&mut gpus, &region, &builder, &opts).unwrap();
    let mut expect = vec![0.0f32; NZ * SLICE];
    gpus[0].host_read(region.arrays[1], 0, &mut expect).unwrap();
    println!("fault-free co-scheduled run:");
    for (i, rep) in clean.per_device.iter().enumerate() {
        let (lo, hi) = clean.partitions[i];
        if let Some(r) = rep {
            println!("  dev{i} [{lo:>3}, {hi:>3}): {r}");
        }
    }
    println!("  makespan {}", clean.makespan);

    // Same region, but the K40m's context dies after half its commands.
    let budget = clean.per_device[0].as_ref().unwrap().commands;
    let (mut gpus, region) = setup();
    gpus[0].set_fault_plan(Some(FaultPlan::seeded(42).device_lost_after(budget / 2)));
    let multi = run_model_multi(&mut gpus, &region, &builder, &opts).unwrap();

    println!("\nK40m lost after {} commands:", budget / 2);
    let rec = &multi.recovery;
    println!(
        "  devices lost {:?} ({} watchdog), {} rebalance events, {} iterations migrated",
        rec.devices_lost, rec.watchdog_fires, rec.rebalance_events, rec.iterations_migrated
    );
    for m in &rec.migrations {
        println!(
            "  migrated [{:>3}, {:>3}) dev{} → dev{} ({})",
            m.range.0, m.range.1, m.from, m.to, m.why
        );
    }
    for (i, ranges) in multi.completed.iter().enumerate() {
        let done: i64 = ranges.iter().map(|(a, b)| b - a).sum();
        println!("  dev{i} completed {done} iterations in {} slices", ranges.len());
    }
    println!(
        "  makespan {} ({:+.1}% vs fault-free)",
        multi.makespan,
        100.0 * (multi.makespan.as_secs_f64() / clean.makespan.as_secs_f64() - 1.0)
    );

    // The survivor's output must be bit-identical to the fault-free run.
    let mut got = vec![0.0f32; NZ * SLICE];
    gpus[1].host_read(region.arrays[1], 0, &mut got).unwrap();
    let interior = SLICE..(NZ - 1) * SLICE;
    assert_eq!(
        got[interior.clone()],
        expect[interior],
        "recovered output diverged"
    );
    println!("\noutput bit-identical to the fault-free co-scheduled run");
}

//! Fault tolerance: run the same pipelined stencil under an injected
//! fault plan three ways — retry disabled (the fault surfaces), with
//! chunk-granular retry (the run self-heals), and with the degradation
//! ladder (retries exhaust and the runtime falls back a model rung) —
//! then compare the recovery accounting against the fault-free run.
//!
//! ```text
//! cargo run --release -p pipeline-apps --example fault_tolerance
//! ```

use gpsim::{
    DeviceProfile, ExecMode, FaultPlan, FaultStage, Gpu, KernelCost, KernelLaunch, SimTime,
};
use pipeline_directive::parse_directive;
use dbpp_core::prelude::*;

const NZ: usize = 256;
const SLICE: usize = 16 * 1024;

fn setup(gpu: &mut Gpu) -> Region {
    let input = gpu.alloc_host(NZ * SLICE, true).unwrap();
    let output = gpu.alloc_host(NZ * SLICE, true).unwrap();
    gpu.host_fill(input, |i| (i % 97) as f32).unwrap();
    let directive = format!(
        "#pragma omp target pipeline(static[4,3]) \
         pipeline_map(to:input[k-1:3][0:{SLICE}]) \
         pipeline_map(from:output[k:1][0:{SLICE}])"
    );
    let spec = parse_directive(&directive)
        .unwrap()
        .to_region_spec(|_| Some(NZ))
        .unwrap();
    Region::new(spec, 1, (NZ - 1) as i64, vec![input, output])
}

fn builder(ctx: &ChunkCtx) -> KernelLaunch {
    let (k0, k1) = (ctx.k0, ctx.k1);
    let (vin, vout) = (ctx.view(0), ctx.view(1));
    KernelLaunch::new(
        "avg3",
        KernelCost {
            flops: (k1 - k0) as u64 * SLICE as u64 * 3,
            bytes: (k1 - k0) as u64 * SLICE as u64 * 8,
        },
        move |kc| {
            for k in k0..k1 {
                let a = kc.read(vin.slice_ptr(k - 1), SLICE)?;
                let b = kc.read(vin.slice_ptr(k), SLICE)?;
                let c = kc.read(vin.slice_ptr(k + 1), SLICE)?;
                let mut out = kc.write(vout.slice_ptr(k), SLICE)?;
                for i in 0..SLICE {
                    out[i] = (a[i] + b[i] + c[i]) / 3.0;
                }
            }
            Ok(())
        },
    )
}

fn main() {
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
    let region = setup(&mut gpu);

    // Baseline: fault-free reference output and cost.
    let clean = run_model(
        &mut gpu,
        &region,
        &builder,
        ExecModel::PipelinedBuffer,
        &RunOptions::default(),
    )
    .unwrap();
    let mut expect = vec![0.0f32; NZ * SLICE];
    gpu.host_read(region.arrays[1], 0, &mut expect).unwrap();
    println!("fault-free      : {clean}");

    // 1. Retry disabled: a single injected H2D fault is fatal.
    gpu.set_fault_plan(Some(FaultPlan::seeded(42).h2d_rate(1.0).max_faults(1)));
    let err = run_model(
        &mut gpu,
        &region,
        &builder,
        ExecModel::PipelinedBuffer,
        &RunOptions::default(),
    )
    .unwrap_err();
    println!("\nretry disabled  : {err}");

    // 2. Chunk-granular retry: a 5% transient H2D fault rate, healed by
    //    re-enqueueing only the failed chunk's copy/kernel/copy triplet.
    gpu.host_fill(region.arrays[1], |_| -1.0).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::seeded(42).h2d_rate(0.05)));
    let retry = RunOptions::default()
        .with_retry(RetryPolicy::retries(8).with_backoff(SimTime::from_us(50), 2.0));
    let healed = run_model(
        &mut gpu,
        &region,
        &builder,
        ExecModel::PipelinedBuffer,
        &retry,
    )
    .unwrap();
    let injected = gpu.faults_injected();
    println!("\n5% h2d faults   : {healed}");
    println!(
        "  {injected} faults injected, {} retried (h2d {}, d2h {}, kernel {}), \
         {} commands reissued, {} backoff",
        healed.recovery.total_retries(),
        healed.recovery.retries[FaultStage::H2d.index()],
        healed.recovery.retries[FaultStage::D2h.index()],
        healed.recovery.retries[FaultStage::Kernel.index()],
        healed.recovery.reissued_commands,
        healed.recovery.backoff_time,
    );
    let mut got = vec![0.0f32; NZ * SLICE];
    gpu.host_read(region.arrays[1], 0, &mut got).unwrap();
    let interior = SLICE..(NZ - 1) * SLICE;
    assert_eq!(got[interior.clone()], expect[interior.clone()], "healed run diverged");
    assert_eq!(clean.commands, healed.commands, "net command count diverged");
    println!("  output bit-identical to the fault-free run, same net command count");
    println!(
        "  resilience overhead: {:.2}% of fault-free makespan",
        100.0 * (healed.total.as_secs_f64() / clean.total.as_secs_f64() - 1.0)
    );

    // 3. Degradation ladder: a deterministic fault burst exhausts a
    //    chunk's retry budget; instead of failing the run, the runtime
    //    drops a model rung and re-executes only the unfinished
    //    iterations.
    gpu.host_fill(region.arrays[1], |_| -1.0).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::seeded(7).kernel_rate(0.9).max_faults(80)));
    let ladder = RunOptions::default()
        .with_retry(RetryPolicy::retries(1).with_backoff(SimTime::from_us(10), 2.0))
        .with_degrade(true);
    let degraded = run_model(
        &mut gpu,
        &region,
        &builder,
        ExecModel::PipelinedBuffer,
        &ladder,
    )
    .unwrap();
    gpu.set_fault_plan(None);
    println!("\nfault burst     : {degraded}");
    for d in &degraded.recovery.degradations {
        println!(
            "  degraded {} -> {} over iterations [{}, {}): {}",
            d.from, d.to, d.iterations.0, d.iterations.1, d.reason
        );
    }
    gpu.host_read(region.arrays[1], 0, &mut got).unwrap();
    assert_eq!(got[interior.clone()], expect[interior], "degraded run diverged");
    println!("  output still bit-identical to the fault-free run");
}

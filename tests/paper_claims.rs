//! The paper's headline claims, asserted at paper scale (timing mode).
//!
//! Abstract: "our approach can reduce memory usage by 52% to 97% while
//! delivering a 1.41× to 1.65× speedup over the naive offload model."
//! Section V adds the per-figure claims asserted in `crates/bench`; this
//! suite checks the global story end-to-end through the facade.

use dbpp::apps::{Conv3dConfig, QcdConfig, StencilConfig};
use dbpp::sim::{DeviceProfile, ExecMode, Gpu};
use dbpp_core::prelude::*;

fn k40m() -> Gpu {
    Gpu::new(DeviceProfile::k40m(), ExecMode::Timing).unwrap()
}

struct Outcome {
    name: &'static str,
    speedup: f64,
    /// Memory saving at the array level (runtime floor excluded).
    array_saving: f64,
    naive: RunReport,
    buffer: RunReport,
}

fn run_all() -> Vec<Outcome> {
    let mut out = Vec::new();
    {
        let mut gpu = k40m();
        let cfg = Conv3dConfig::polybench_default();
        let inst = cfg.setup(&mut gpu).unwrap();
        let b = cfg.builder();
        let naive = run_model(&mut gpu, &inst.region, &b, ExecModel::Naive, &RunOptions::default()).unwrap();
        let buffer = run_model(&mut gpu, &inst.region, &b, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        out.push(Outcome {
            name: "3dconv",
            speedup: buffer.speedup_over(&naive),
            array_saving: 1.0 - buffer.array_bytes as f64 / naive.array_bytes as f64,
            naive,
            buffer,
        });
    }
    {
        let mut gpu = k40m();
        let cfg = StencilConfig::parboil_default();
        let inst = cfg.setup(&mut gpu).unwrap();
        let b = cfg.builder();
        let naive = run_model(&mut gpu, &inst.region, &b, ExecModel::Naive, &RunOptions::default()).unwrap();
        let buffer = run_model(&mut gpu, &inst.region, &b, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        out.push(Outcome {
            name: "stencil",
            speedup: buffer.speedup_over(&naive),
            array_saving: 1.0 - buffer.array_bytes as f64 / naive.array_bytes as f64,
            naive,
            buffer,
        });
    }
    for (name, n) in [("qcd-medium", 24), ("qcd-large", 36)] {
        let mut gpu = k40m();
        let cfg = QcdConfig::paper_size(n);
        let inst = cfg.setup(&mut gpu).unwrap();
        let b = cfg.builder();
        let naive = run_model(&mut gpu, &inst.region, &b, ExecModel::Naive, &RunOptions::default()).unwrap();
        let buffer = run_model(&mut gpu, &inst.region, &b, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
        out.push(Outcome {
            name,
            speedup: buffer.speedup_over(&naive),
            array_saving: 1.0 - buffer.array_bytes as f64 / naive.array_bytes as f64,
            naive,
            buffer,
        });
    }
    out
}

#[test]
fn headline_speedup_band_holds() {
    // Paper: 1.41×–1.65× over naive across the benchmark set. Our
    // simulated band is slightly wider (the simulator pipelines a bit
    // more cleanly than the 2017 software stack); assert every benchmark
    // wins by ≥1.35× and none exceeds the 2× overlap bound.
    for o in run_all() {
        assert!(
            o.speedup > 1.35 && o.speedup < 2.0,
            "{}: speedup {} outside the reproduction band",
            o.name,
            o.speedup
        );
    }
}

#[test]
fn headline_memory_band_holds() {
    // Paper: 52%–97% memory reduction. At the array level (excluding
    // the fixed runtime reservation) every benchmark must save ≥52%,
    // and 3dconv — the paper's 97% case — must save ≥95%.
    let all = run_all();
    for o in &all {
        assert!(
            o.array_saving > 0.52,
            "{}: array saving {}",
            o.name,
            o.array_saving
        );
    }
    let conv = &all[0];
    assert!(conv.array_saving > 0.95, "3dconv saving {}", conv.array_saving);
}

#[test]
fn transfers_and_compute_really_overlap() {
    // In every buffered run, summed engine busy time must exceed the
    // makespan — the definition of overlap.
    for o in run_all() {
        let busy = o.buffer.h2d + o.buffer.d2h + o.buffer.kernel;
        assert!(
            busy > o.buffer.total,
            "{}: no overlap (busy {busy}, total {})",
            o.name,
            o.buffer.total
        );
        // And the naive run must NOT overlap (serial by construction).
        let naive_busy = o.naive.h2d + o.naive.d2h + o.naive.kernel;
        assert!(naive_busy <= o.naive.total);
    }
}

#[test]
fn buffered_version_enables_oversized_datasets() {
    // §VI: "current GPUs only have 5GB to 12GB of discrete GPU memory, a
    // major obstacle" — the buffered model must run a dataset bigger
    // than device memory end to end.
    let mut profile = DeviceProfile::k40m();
    profile.mem_capacity = 600_000_000; // 0.6 GB device
    let mut gpu = Gpu::new(profile, ExecMode::Timing).unwrap();
    let cfg = Conv3dConfig {
        ni: 640,
        nj: 640,
        nk: 640,
        chunk: 2,
        streams: 3,
    }; // 3.3 GB footprint
    let inst = cfg.setup(&mut gpu).unwrap();
    let b = cfg.builder();
    assert!(run_model(&mut gpu, &inst.region, &b, ExecModel::Naive, &RunOptions::default()).is_err(), "should OOM");
    let rep = run_model(&mut gpu, &inst.region, &b, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    assert!(rep.gpu_mem_bytes < 600_000_000);
}

//! End-to-end integration: the full path a user of the proposed
//! extension takes — directive text → parser → typed region → runtime
//! drivers → simulated device — validated functionally against CPU
//! references.

use dbpp::apps::util::{assert_exact, read_host};
use dbpp::directive::parse_directive;
use dbpp::sim::{DeviceProfile, ExecMode, Gpu, HostPool, KernelCost, KernelLaunch};
use dbpp_core::autotune;
use dbpp_core::prelude::*;

const NZ: usize = 24;
const NY: usize = 10;
const NX: usize = 8;
const PLANE: usize = NY * NX;

/// A blur along z expressed entirely through the directive front-end.
fn directive_region(gpu: &mut Gpu) -> Region {
    let src = gpu.alloc_host(NZ * PLANE, true).unwrap();
    let dst = gpu.alloc_host(NZ * PLANE, true).unwrap();
    gpu.host_fill(src, |i| ((i * 31) % 17) as f32).unwrap();
    let text = format!(
        "#pragma omp target pipeline(static[2,3]) \
         pipeline_map(to:src[k-1:3][0:{NY}][0:{NX}]) \
         pipeline_map(from:dst[k:1][0:{NY}][0:{NX}])"
    );
    let spec = parse_directive(&text)
        .unwrap()
        .to_region_spec(|_| Some(NZ))
        .unwrap();
    Region::new(spec, 1, (NZ - 1) as i64, vec![src, dst])
}

fn blur_builder(ctx: &ChunkCtx) -> KernelLaunch {
    let (k0, k1) = (ctx.k0, ctx.k1);
    let (vin, vout) = (ctx.view(0), ctx.view(1));
    KernelLaunch::new(
        "blur_z",
        KernelCost {
            flops: (k1 - k0) as u64 * PLANE as u64 * 2,
            bytes: (k1 - k0) as u64 * PLANE as u64 * 8,
        },
        move |kc| {
            for k in k0..k1 {
                let a = kc.read(vin.slice_ptr(k - 1), PLANE)?;
                let b = kc.read(vin.slice_ptr(k), PLANE)?;
                let c = kc.read(vin.slice_ptr(k + 1), PLANE)?;
                let mut out = kc.write(vout.slice_ptr(k), PLANE)?;
                for i in 0..PLANE {
                    out[i] = (a[i] + b[i] + c[i]) / 3.0;
                }
            }
            Ok(())
        },
    )
}

fn blur_reference(src: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; NZ * PLANE];
    for k in 1..NZ - 1 {
        for i in 0..PLANE {
            out[k * PLANE + i] =
                (src[(k - 1) * PLANE + i] + src[k * PLANE + i] + src[(k + 1) * PLANE + i]) / 3.0;
        }
    }
    out
}

#[test]
fn directive_to_device_round_trip() {
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();
    gpu.set_race_check(true);
    let region = directive_region(&mut gpu);
    let src = read_host(&gpu, region.arrays[0]).unwrap();
    let expect = blur_reference(&src);

    for name in ["naive", "pipelined", "buffer"] {
        gpu.host_fill(region.arrays[1], |_| -7.0).unwrap();
        match name {
            "naive" => run_model(&mut gpu, &region, &blur_builder, ExecModel::Naive, &RunOptions::default()).unwrap(),
            "pipelined" => run_model(&mut gpu, &region, &blur_builder, ExecModel::Pipelined, &RunOptions::default()).unwrap(),
            _ => run_model(&mut gpu, &region, &blur_builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap(),
        };
        let got = read_host(&gpu, region.arrays[1]).unwrap();
        assert_exact(
            &got[PLANE..(NZ - 1) * PLANE],
            &expect[PLANE..(NZ - 1) * PLANE],
            name,
        );
    }
}

#[test]
fn directive_region_co_schedules_across_two_devices() {
    let pool = HostPool::new(ExecMode::Functional);
    let mut gpus = vec![
        Gpu::with_host_pool(DeviceProfile::k40m(), pool.clone()).unwrap(),
        Gpu::with_host_pool(DeviceProfile::hd7970(), pool).unwrap(),
    ];
    let region = directive_region(&mut gpus[0]);
    let src = read_host(&gpus[0], region.arrays[0]).unwrap();
    let expect = blur_reference(&src);

    let opts = RunOptions::default()
        .with_multi(MultiOptions::default().with_probe_cost(2 * PLANE as u64, 8 * PLANE as u64));
    let multi = run_model_multi(&mut gpus, &region, &blur_builder, &opts).unwrap();
    assert_eq!(multi.partitions.len(), 2);

    let got = read_host(&gpus[0], region.arrays[1]).unwrap();
    assert_exact(
        &got[PLANE..(NZ - 1) * PLANE],
        &expect[PLANE..(NZ - 1) * PLANE],
        "multi-device",
    );
}

#[test]
fn autotuned_schedule_is_no_worse_than_the_directive_default() {
    let mut gpu = Gpu::new(DeviceProfile::hd7970(), ExecMode::Timing).unwrap();
    let src = gpu.alloc_host(NZ * PLANE * 512, true).unwrap();
    let dst = gpu.alloc_host(NZ * PLANE * 512, true).unwrap();
    let text = format!(
        "pipeline(static[1,3]) \
         pipeline_map(to:src[k-1:3][0:{}]) \
         pipeline_map(from:dst[k:1][0:{}])",
        PLANE * 512,
        PLANE * 512
    );
    let spec = parse_directive(&text)
        .unwrap()
        .to_region_spec(|_| Some(NZ))
        .unwrap();
    let region = Region::new(spec, 1, (NZ - 1) as i64, vec![src, dst]);

    let builder = |ctx: &ChunkCtx| {
        let n = (ctx.k1 - ctx.k0) as u64;
        KernelLaunch::cost_only(
            "blur_cost",
            KernelCost {
                flops: n * (PLANE * 512) as u64 * 2,
                bytes: n * (PLANE * 512) as u64 * 8,
            },
        )
    };
    let default = run_model(&mut gpu, &region, &builder, ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    let tuned = autotune(&gpu, &region, &builder, &TuneSpace::default()).unwrap();
    assert!(
        tuned.best_time <= default.total,
        "tuner regressed: {} > {}",
        tuned.best_time,
        default.total
    );
}

#[test]
fn all_four_apps_run_through_the_facade() {
    // Smoke-level end-to-end: every evaluation application constructs,
    // runs under the buffer driver, and reports sane numbers.
    let mut gpu = Gpu::new(DeviceProfile::k40m(), ExecMode::Functional).unwrap();

    let stencil = dbpp::apps::StencilConfig::test_small();
    let inst = stencil.setup(&mut gpu).unwrap();
    let rep = run_model(&mut gpu, &inst.region, &stencil.builder(), ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    assert!(rep.total > dbpp::sim::SimTime::ZERO);

    let conv = dbpp::apps::Conv3dConfig::test_small();
    let inst = conv.setup(&mut gpu).unwrap();
    let rep = run_model(&mut gpu, &inst.region, &conv.builder(), ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    assert!(rep.h2d_bytes > 0);

    let qcd = dbpp::apps::QcdConfig::test_small();
    let inst = qcd.setup(&mut gpu).unwrap();
    let rep = run_model(&mut gpu, &inst.region, &qcd.builder(), ExecModel::PipelinedBuffer, &RunOptions::default()).unwrap();
    assert!(rep.chunks > 1);

    let mm = dbpp::apps::MatmulConfig::test_small();
    let (a, b, c) = mm.host_matrices(&mut gpu).unwrap();
    let rep = mm.run_pipeline_buffer(&mut gpu, a, b, c).unwrap();
    assert!(rep.d2h_bytes >= (mm.n * mm.n * 4) as u64);
}
